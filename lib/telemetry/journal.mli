(** Campaign flight recorder: bounded crash-safe JSONL event journal.
    Recorded events live in a fixed-size window (oldest dropped, drop
    count preserved); {!flush} publishes the window atomically at sync
    barriers; {!load} recovers from truncated files by skipping and
    counting bad lines. *)

val format_version : int

type event = {
  e_seq : int;  (** global, monotonic — gaps reveal the dropped prefix *)
  e_ts : float;
  e_kind : string;
  e_fields : (string * Json.t) list;
}

type t

(** [limit] bounds retained events (default 8192, min 1). *)
val create : ?limit:int -> ?clock:Clock.t -> unit -> t

(** Append an event (thread-safe); oldest dropped beyond the limit. *)
val record : t -> kind:string -> (string * Json.t) list -> unit

val length : t -> int
val dropped : t -> int

(** Retained events, oldest first. *)
val events : t -> event list

(** The full JSONL document: header line + one line per event. *)
val render : t -> string

(** Atomically publish the window to [path]. Raises [Sys_error] on I/O
    failure. *)
val flush : t -> string -> unit

type loaded = {
  l_events : event list;
  l_dropped : int;  (** from the header *)
  l_skipped : int;  (** unparseable lines — truncation recovery *)
}

(** Never fails on corrupt content, only on an unopenable file
    ([Sys_error]). *)
val load : string -> loaded

val field : event -> string -> Json.t option
val field_int : event -> string -> int option
val field_float : event -> string -> float option
val field_str : event -> string -> string option
