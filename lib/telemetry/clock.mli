(** Time sources for the telemetry layer: a real monotonic wall clock
    for production, an injectable virtual clock for deterministic tests. *)

type t = unit -> float

(** Wall-clock seconds (the same source as the rest of the toolchain). *)
val monotonic : t

(** Always returns the given instant. *)
val fixed : float -> t

(** Advances by [step] seconds on every read; first read returns
    [start]. Deterministic across runs. *)
val virtual_clock : ?start:float -> step:float -> unit -> t

(** Mutex-protect a clock so multiple domains can read it concurrently
    (stateful clocks like {!virtual_clock} are not otherwise safe). *)
val synchronized : t -> t
