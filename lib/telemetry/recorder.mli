(** One handle for the whole telemetry layer: span tree + metric
    registry + the clock stamping both. The [_opt] helpers take an
    [option] so instrumented code pays one branch when telemetry is off. *)

type t = {
  clock : Clock.t;
  spans : Span.t;
  metrics : Metrics.t;
}

(** [span_limit] bounds spans retained per parent (see [Span.create]);
    counters are never dropped. *)
val create : ?clock:Clock.t -> ?span_limit:int -> unit -> t

(** Fresh recorder for one concurrent producer; inherits the parent's
    span limit and (unless overridden) clock. See {!merge}. *)
val fork : ?clock:Clock.t -> t -> t

(** Graft a forked recorder's spans under [parent] (or as roots) and
    fold its metrics into [into]. Call at the join point, from the
    owning domain, in a deterministic order across forks. *)
val merge : into:t -> ?parent:Span.span -> t -> unit

val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Times [f] when a recorder is present; plain [f ()] otherwise. *)
val span_opt :
  t option ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a

(** Increment a counter (find-or-create) when a recorder is present. *)
val count : t option -> ?labels:Metrics.labels -> ?by:int -> string -> unit

(** Observe into a histogram (find-or-create) when a recorder is present. *)
val observe : t option -> ?labels:Metrics.labels -> string -> float -> unit

(** Read back a counter's current value; 0 when absent or no recorder. *)
val value : t option -> ?labels:Metrics.labels -> string -> int
