(** Minimal dependency-free JSON: deterministic printer plus a strict
    parser, shared by the benchmark snapshots ({!Snapshot}) and the
    campaign flight recorder ({!Journal}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Render; [indent > 0] pretty-prints with that step. Object fields
    keep the order given — output is byte-deterministic. Non-finite
    floats render as [null]. *)
val to_string : ?indent:int -> t -> string

(** Parse one document. [Error msg] on malformed input or trailing
    garbage (a truncated journal line, a corrupted snapshot). *)
val of_string : string -> (t, string) result

(** Object field lookup; [None] on missing field or non-object. *)
val member : string -> t -> t option

val to_int : t -> int option

(** Accepts [Int] too (JSON does not distinguish). *)
val to_float : t -> float option

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
