(** Labeled metric registry: monotonic counters and histograms, keyed by
    (name, labels). Registration order is preserved so every rendering
    of the registry is deterministic — a requirement for the test that
    two identical builds produce byte-identical counter output. *)

type labels = (string * string) list

type counter = {
  c_name : string;
  c_labels : labels;
  c_clock : Clock.t;
  c_track_series : bool;
  mutable c_value : int;
  mutable c_series : (float * int) list;  (** (timestamp, value), newest first *)
}

type registered =
  | Counter of counter
  | Histo of string * labels * Histogram.t

type t = {
  clock : Clock.t;
  table : (string, registered) Hashtbl.t;  (** keyed by name+labels *)
  mutable order : string list;  (** registration order, newest first *)
}

let create ?(clock = Clock.monotonic) () =
  { clock; table = Hashtbl.create 32; order = [] }

let key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

(* canonical label order so ("a","1"),("b","2") and its permutation are
   the same metric *)
let normalize labels = List.sort compare labels

let register t k r =
  Hashtbl.replace t.table k r;
  t.order <- k :: t.order

(** Find-or-create a counter. [series] additionally records a
    (timestamp, value) point on every update, for counter tracks in the
    Chrome trace export (e.g. coverage over time). *)
let counter t ?(labels = []) ?(series = false) name =
  let labels = normalize labels in
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some (Counter c) -> c
  | Some (Histo _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
    let c =
      {
        c_name = name;
        c_labels = labels;
        c_clock = t.clock;
        c_track_series = series;
        c_value = 0;
        c_series = [];
      }
    in
    register t k (Counter c);
    c

let incr ?(by = 1) c =
  c.c_value <- c.c_value + by;
  if c.c_track_series then c.c_series <- (c.c_clock (), c.c_value) :: c.c_series

let set c v =
  c.c_value <- v;
  if c.c_track_series then c.c_series <- (c.c_clock (), c.c_value) :: c.c_series

let value c = c.c_value

(** Counter samples in chronological order (empty unless created with
    [~series:true]). *)
let series c = List.rev c.c_series

let counter_name c = c.c_name
let counter_labels c = c.c_labels

(** Find-or-create a histogram. *)
let histogram t ?(labels = []) name =
  let labels = normalize labels in
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some (Histo (_, _, h)) -> h
  | Some (Counter _) -> invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter")
  | None ->
    let h = Histogram.create () in
    register t k (Histo (name, labels, h));
    h

let observe t ?labels name v = Histogram.observe (histogram t ?labels name) v

let fold t f acc =
  List.fold_left
    (fun acc k ->
      match Hashtbl.find_opt t.table k with
      | Some r -> f acc r
      | None -> acc)
    acc (List.rev t.order)

(** All counters, in registration order. *)
let counters t =
  List.rev
    (fold t (fun acc r -> match r with Counter c -> c :: acc | _ -> acc) [])

(** All histograms, in registration order. *)
let histograms t =
  List.rev
    (fold t
       (fun acc r -> match r with Histo (n, l, h) -> (n, l, h) :: acc | _ -> acc)
       [])

(* Merge two newest-first timestamped sample lists, newest first. *)
let rec merge_series a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ta, _) :: _, ((tb, _) as hb) :: rb when tb >= ta -> hb :: merge_series a rb
  | ha :: ra, _ -> ha :: merge_series ra b

(** Fold every metric of [src] into [into]: counter values add (series
    samples interleave by timestamp), histogram samples union. Metrics
    new to [into] register in [src]'s registration order, so merging
    forked recorders in a fixed join order keeps [into]'s iteration
    order deterministic regardless of worker scheduling. *)
let merge ~into src =
  fold src
    (fun () r ->
      match r with
      | Counter c ->
        let dst =
          counter into ~labels:c.c_labels ~series:c.c_track_series c.c_name
        in
        dst.c_value <- dst.c_value + c.c_value;
        if dst.c_track_series then
          dst.c_series <- merge_series dst.c_series c.c_series
      | Histo (n, l, h) ->
        Histogram.merge ~into:(histogram into ~labels:l n) h)
    ()

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

(** Deterministic one-line-per-metric dump (counters as integers,
    histograms as count/sum). Used by the determinism test. *)
let render t =
  let lines =
    fold t
      (fun acc r ->
        (match r with
        | Counter c ->
          Printf.sprintf "%s%s %d" c.c_name (label_string c.c_labels) c.c_value
        | Histo (n, l, h) ->
          Printf.sprintf "%s%s count=%d sum=%.6f" n (label_string l)
            (Histogram.count h) (Histogram.sum h))
        :: acc)
      []
  in
  String.concat "\n" (List.rev lines)
