(** Machine-readable benchmark snapshots: the perf-trajectory layer.

    One snapshot = one bench section's run, as a versioned JSON document
    ([BENCH_<section>.json]): run metadata (git revision, jobs, mode),
    plus a flat list of metrics, each carrying a unit and a {e tolerance
    class} that tells the diff engine how much drift is legitimate:

    - {!Exact} — deterministic counters (VM cycles, coverage, modelled
      link cost ratios, cache hits). Any change is a regression (or an
      unreviewed improvement): fail.
    - {!Cost} — modelled or derived quantities with small legitimate
      jitter (per-barrier averages over a sampled run). Small drift
      warns, larger drift fails.
    - {!Wall} — host wall-clock measurements. Meaningful on one machine
      across commits, noisy across machines; warn/fail bands are wider
      and gates typically run with [--ignore wall] on shared CI.
    - {!Info} — context (worker counts, program sizes): never gates.

    Documents are published with {!Support.Fsio.write_atomic}, so a
    killed bench run never leaves a truncated snapshot. *)

let schema_version = 1

type cls = Exact | Cost | Wall | Info

let cls_to_string = function
  | Exact -> "exact"
  | Cost -> "cost"
  | Wall -> "wall"
  | Info -> "info"

let cls_of_string = function
  | "exact" -> Some Exact
  | "cost" -> Some Cost
  | "wall" -> Some Wall
  | "info" -> Some Info
  | _ -> None

type metric = {
  m_name : string;
  m_value : float;
  m_unit : string;  (** "ms", "cycles", "count", "ratio", "percent", ... *)
  m_class : cls;
}

type t = {
  s_schema : int;
  s_section : string;
  s_meta : (string * string) list;  (** git_rev, jobs, created, ... *)
  s_metrics : metric list;
}

let metric ?(unit_ = "count") ?(cls = Info) name value =
  { m_name = name; m_value = value; m_unit = unit_; m_class = cls }

let create ~section ?(meta = []) metrics =
  { s_schema = schema_version; s_section = section; s_meta = meta; s_metrics = metrics }

let find t name =
  List.find_opt (fun m -> m.m_name = name) t.s_metrics

(* ------------------------------------------------------------------ *)
(* Run metadata                                                        *)
(* ------------------------------------------------------------------ *)

(* Resolve HEAD by reading .git directly — no subprocess, works in any
   checkout; "unknown" outside a repository. *)
let git_rev () =
  let read path = try Some (String.trim (Support.Fsio.read_file path)) with _ -> None in
  let rec find_git dir depth =
    if depth > 8 then None
    else
      let cand = Filename.concat dir ".git" in
      if Sys.file_exists cand then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
  in
  match find_git (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some git -> (
    match read (Filename.concat git "HEAD") with
    | None -> "unknown"
    | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then
        let refname = String.sub head 5 (String.length head - 5) in
        let direct = read (Filename.concat git refname) in
        let packed () =
          match read (Filename.concat git "packed-refs") with
          | None -> None
          | Some body ->
            String.split_on_char '\n' body
            |> List.find_map (fun line ->
                   match String.index_opt line ' ' with
                   | Some i
                     when String.sub line (i + 1) (String.length line - i - 1)
                          = refname ->
                     Some (String.sub line 0 i)
                   | _ -> None)
        in
        let rev =
          match direct with Some r -> Some r | None -> packed ()
        in
        (match rev with
        | Some r when String.length r >= 12 -> String.sub r 0 12
        | Some r -> r
        | None -> "unknown")
      else if String.length head >= 12 then String.sub head 0 12
      else head)

(** Standard metadata block: git revision, job count, creation time
    (wall — informational only; the diff engine never reads meta). *)
let default_meta ?(jobs = 0) ?(extra = []) () =
  [
    ("git_rev", git_rev ());
    ("jobs", string_of_int jobs);
    ("hostname", try Unix.gethostname () with _ -> "unknown");
    ("created", Printf.sprintf "%.0f" (Unix.time ()));
  ]
  @ extra

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                     *)
(* ------------------------------------------------------------------ *)

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int t.s_schema);
      ("section", Json.String t.s_section);
      ( "meta",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.s_meta) );
      ( "metrics",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("name", Json.String m.m_name);
                   ("value", Json.Float m.m_value);
                   ("unit", Json.String m.m_unit);
                   ("class", Json.String (cls_to_string m.m_class));
                 ])
             t.s_metrics) );
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let req name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "snapshot: missing or bad field %S" name)
  in
  let* schema = req "schema_version" Json.to_int in
  if schema <> schema_version then
    Error
      (Printf.sprintf "snapshot: schema version %d, this reader understands %d"
         schema schema_version)
  else
    let* section = req "section" Json.to_str in
    let meta =
      match Json.member "meta" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          fields
      | _ -> []
    in
    let* metrics_json = req "metrics" Json.to_list in
    let* metrics =
      List.fold_left
        (fun acc mj ->
          let* acc = acc in
          let get name conv =
            match Option.bind (Json.member name mj) conv with
            | Some v -> Ok v
            | None ->
              Error (Printf.sprintf "snapshot: metric missing field %S" name)
          in
          let* name = get "name" Json.to_str in
          let* value = get "value" Json.to_float in
          let* unit_ = get "unit" Json.to_str in
          let* cls_s = get "class" Json.to_str in
          match cls_of_string cls_s with
          | None -> Error (Printf.sprintf "snapshot: unknown class %S" cls_s)
          | Some cls ->
            Ok ({ m_name = name; m_value = value; m_unit = unit_; m_class = cls } :: acc))
        (Ok []) metrics_json
    in
    Ok
      {
        s_schema = schema;
        s_section = section;
        s_meta = meta;
        s_metrics = List.rev metrics;
      }

let render t = Json.to_string ~indent:2 (to_json t) ^ "\n"

let parse s =
  match Json.of_string s with
  | Error msg -> Error ("snapshot: invalid JSON: " ^ msg)
  | Ok j -> of_json j

let filename section = Printf.sprintf "BENCH_%s.json" section

(** Write [BENCH_<section>.json] under [dir] (created if missing),
    atomically. Returns the path written. *)
let write ~dir t =
  Support.Fsio.mkdir_p dir;
  let path = Filename.concat dir (filename t.s_section) in
  Support.Fsio.write_atomic path (render t);
  path

let read path =
  match (try Ok (Support.Fsio.read_file path) with Sys_error m -> Error m) with
  | Error m -> Error m
  | Ok body -> parse body

(* ------------------------------------------------------------------ *)
(* Diff: the regression gate                                           *)
(* ------------------------------------------------------------------ *)

type verdict = Pass | Warn | Fail

type tolerances = {
  tol_cost_warn : float;  (** relative drift, e.g. 0.02 = 2% *)
  tol_cost_fail : float;
  tol_wall_warn : float;
  tol_wall_fail : float;
}

(** Cost: warn over 2%, fail over 10%. Wall: warn over 10%, fail over
    15% — a 20% wall-time regression always fails. *)
let default_tolerances =
  { tol_cost_warn = 0.02; tol_cost_fail = 0.10; tol_wall_warn = 0.10; tol_wall_fail = 0.15 }

type entry = {
  d_name : string;
  d_class : cls;
  d_unit : string;
  d_base : float option;  (** [None]: metric new in current *)
  d_cur : float option;  (** [None]: metric vanished from current *)
  d_delta : float;  (** relative drift, signed; 0 when either side missing *)
  d_verdict : verdict;
  d_note : string;
}

let rel_delta base cur =
  if base = cur then 0.
  else if Float.abs base < 1e-12 then Float.infinity *. Float.of_int (compare cur base)
  else (cur -. base) /. Float.abs base

(** Compare one metric pair. Regressions are {e increases} for wall and
    cost classes (all gated wall/cost metrics are durations or modelled
    costs — lower is better); improvements pass with a note. Exact
    metrics fail on any change, in either direction: an unexplained
    "improvement" in a deterministic counter is a behavior change that
    must be reviewed and baselined, not silently absorbed. *)
let diff_metric ?(tol = default_tolerances) (base : metric) (cur : metric) =
  let delta = rel_delta base.m_value cur.m_value in
  let verdict, note =
    match base.m_class with
    | Info -> (Pass, "")
    | Exact ->
      if base.m_value = cur.m_value then (Pass, "")
      else (Fail, "exact metric drifted")
    | Cost | Wall ->
      let warn_t, fail_t =
        match base.m_class with
        | Cost -> (tol.tol_cost_warn, tol.tol_cost_fail)
        | _ -> (tol.tol_wall_warn, tol.tol_wall_fail)
      in
      if delta > fail_t then (Fail, Printf.sprintf "over +%.0f%%" (100. *. fail_t))
      else if delta > warn_t then (Warn, Printf.sprintf "over +%.0f%%" (100. *. warn_t))
      else if delta < -.warn_t then (Pass, "improved")
      else (Pass, "")
  in
  {
    d_name = base.m_name;
    d_class = base.m_class;
    d_unit = base.m_unit;
    d_base = Some base.m_value;
    d_cur = Some cur.m_value;
    d_delta = delta;
    d_verdict = verdict;
    d_note = note;
  }

(** Diff two snapshots of the same section. [ignore_classes] drops the
    listed classes from gating entirely (CI compares committed baselines
    across machines with [~ignore_classes:[Wall]]). A metric present in
    the baseline but missing from the current run fails — silently
    dropping a gated metric must not pass the gate; new metrics pass
    with a note. *)
let diff ?(tol = default_tolerances) ?(ignore_classes = []) ~baseline ~current () =
  let ignored m = List.mem m.m_class ignore_classes in
  let entries =
    List.map
      (fun bm ->
        match find current bm.m_name with
        | Some cm when not (ignored bm) -> diff_metric ~tol bm cm
        | Some cm ->
          {
            d_name = bm.m_name;
            d_class = bm.m_class;
            d_unit = bm.m_unit;
            d_base = Some bm.m_value;
            d_cur = Some cm.m_value;
            d_delta = rel_delta bm.m_value cm.m_value;
            d_verdict = Pass;
            d_note = "class ignored";
          }
        | None ->
          {
            d_name = bm.m_name;
            d_class = bm.m_class;
            d_unit = bm.m_unit;
            d_base = Some bm.m_value;
            d_cur = None;
            d_delta = 0.;
            d_verdict = (if ignored bm || bm.m_class = Info then Pass else Fail);
            d_note = "metric missing from current";
          })
      baseline.s_metrics
  in
  let new_entries =
    List.filter_map
      (fun cm ->
        match find baseline cm.m_name with
        | Some _ -> None
        | None ->
          Some
            {
              d_name = cm.m_name;
              d_class = cm.m_class;
              d_unit = cm.m_unit;
              d_base = None;
              d_cur = Some cm.m_value;
              d_delta = 0.;
              d_verdict = Pass;
              d_note = "new metric";
            })
      current.s_metrics
  in
  entries @ new_entries

let worst entries =
  List.fold_left
    (fun acc e ->
      match (acc, e.d_verdict) with
      | _, Fail | Fail, _ -> Fail
      | _, Warn | Warn, _ -> Warn
      | Pass, Pass -> Pass)
    Pass entries
