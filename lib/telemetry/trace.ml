(** Chrome [trace_event]-format JSON exporter. The output loads directly
    in [chrome://tracing] and Perfetto:

    - every span becomes a complete event ([ph:"X"]) with microsecond
      [ts]/[dur]; nesting is implied by interval containment,
    - every series counter becomes a stream of counter events ([ph:"C"])
      so e.g. coverage-over-time renders as a track,
    - a metadata event names the process.

    Only the official four keys of the format are assumed by consumers;
    everything else rides in [args]. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",";
      buf_add_json_string b k;
      Buffer.add_string b ":";
      buf_add_json_string b v)
    args;
  Buffer.add_string b "}"

(* timestamps are relative to the earliest span so traces start at ~0
   regardless of the clock's epoch *)
let epoch spans =
  match Span.roots spans with
  | [] -> 0.
  | sp :: _ -> Span.start sp

let us t0 t = (t -. t0) *. 1e6

let add_event b ~first ~name ~cat ~ph ~ts ?dur ?args ?(pid = 1) ?(tid = 1) () =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b name;
  Buffer.add_string b ",\"cat\":";
  buf_add_json_string b (if cat = "" then "default" else cat);
  Buffer.add_string b (Printf.sprintf ",\"ph\":\"%s\"" ph);
  Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f" ts);
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" d)
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid tid);
  (match args with
  | Some a ->
    Buffer.add_string b ",\"args\":";
    add_args b a
  | None -> ());
  Buffer.add_string b "}"

(** Serialize a recorder to a [trace_event] JSON document. *)
let to_json ?(process_name = "odin") (r : Recorder.t) =
  let b = Buffer.create 4096 in
  let first = ref true in
  let t0 = epoch r.Recorder.spans in
  Buffer.add_string b "{\"traceEvents\":[\n";
  add_event b ~first ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:0.
    ~args:[ ("name", process_name) ] ();
  Span.iter r.Recorder.spans (fun ~depth:_ sp ->
      let args =
        match Span.dropped_children sp with
        | 0 -> Span.args sp
        | n -> Span.args sp @ [ ("dropped_children", string_of_int n) ]
      in
      add_event b ~first ~name:(Span.name sp) ~cat:(Span.cat sp) ~ph:"X"
        ~ts:(us t0 (Span.start sp))
        ~dur:(Span.duration sp *. 1e6)
        ~tid:(Span.tid sp) ~args ());
  List.iter
    (fun c ->
      let name =
        Metrics.counter_name c ^ Metrics.label_string (Metrics.counter_labels c)
      in
      List.iter
        (fun (ts, v) ->
          add_event b ~first ~name ~cat:"counter" ~ph:"C" ~ts:(us t0 ts)
            ~args:[ ("value", string_of_int v) ] ())
        (Metrics.series c))
    (Metrics.counters r.Recorder.metrics);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(** Write {!to_json} to [path], atomically (tmp + rename): a campaign
    killed mid-export never leaves a truncated trace. *)
let write ?process_name (r : Recorder.t) path =
  Support.Fsio.write_atomic path (to_json ?process_name r)
