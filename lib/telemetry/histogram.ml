(** Streaming histogram: accumulates float samples and answers the
    percentile questions the reports ask (p50/p90/p99). Samples are kept
    exactly — campaign sizes here are thousands of observations, far
    below the point where sketching would pay off. *)

type t = {
  mutable samples : float list;  (** newest first *)
  mutable count : int;
  mutable sum : float;
}

let create () = { samples = []; count = 0; sum = 0. }

let observe h v =
  h.samples <- v :: h.samples;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v

let count h = h.count
let sum h = h.sum

(** Samples in observation order. *)
let samples h = List.rev h.samples

let mean h = if h.count = 0 then nan else h.sum /. float_of_int h.count

(** Percentile with linear interpolation; [nan] when empty. *)
let percentile h p = Support.Stats.percentile p h.samples

let p50 h = percentile h 50.
let p90 h = Support.Stats.p90 h.samples
let p99 h = Support.Stats.p99 h.samples
let min_v h = if h.count = 0 then nan else Support.Stats.min_l h.samples
let max_v h = if h.count = 0 then nan else Support.Stats.max_l h.samples

(** Fold [src]'s samples into [dst]. Percentiles and count/sum behave
    as if every sample had been observed on [dst]; sample order is
    dst-then-src. *)
let merge ~into:(dst : t) (src : t) =
  dst.samples <- src.samples @ dst.samples;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum
