(** LLVM [-ftime-report]-style text rendering of a recorder: an indented
    span tree, a flat per-stage aggregate (count, total, avg, share of
    wall time), counters, and histogram percentiles — all as aligned
    tables via {!Support.Tab}. *)

let ms x = Printf.sprintf "%.3f" (1000. *. x)

(* wall time = sum of root spans; the denominator of the "%" column *)
let wall spans =
  List.fold_left (fun a sp -> a +. Span.duration sp) 0. (Span.roots spans)

let tree_rows spans =
  let rows = ref [] in
  Span.iter spans (fun ~depth sp ->
      let indent = String.make (2 * depth) ' ' in
      let args = Span.args sp in
      let arg_str =
        if args = [] then ""
        else
          "(" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args) ^ ")"
      in
      rows :=
        [ indent ^ Span.name sp; ms (Span.duration sp); arg_str ] :: !rows);
  List.rev !rows

(** Per-stage aggregate over every span of the same name: the
    [-ftime-report] table. Sorted by total time, descending (ties by
    name, for determinism). *)
let aggregate_rows spans =
  let order = ref [] in
  let table : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  Span.iter spans (fun ~depth:_ sp ->
      let n = Span.name sp in
      let count, total =
        match Hashtbl.find_opt table n with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, ref 0.) in
          Hashtbl.replace table n cell;
          order := n :: !order;
          cell
      in
      incr count;
      total := !total +. Span.duration sp);
  let w = wall spans in
  List.rev !order
  |> List.map (fun n ->
         let count, total = Hashtbl.find table n in
         (n, !count, !total))
  |> List.sort (fun (n1, _, t1) (n2, _, t2) ->
         match compare t2 t1 with 0 -> compare n1 n2 | c -> c)
  |> List.map (fun (n, count, total) ->
         [
           n;
           string_of_int count;
           ms total;
           ms (total /. float_of_int count);
           (if w > 0. then Printf.sprintf "%.1f%%" (100. *. total /. w) else "-");
         ])

let counter_rows metrics =
  List.map
    (fun c ->
      [
        Metrics.counter_name c ^ Metrics.label_string (Metrics.counter_labels c);
        string_of_int (Metrics.value c);
      ])
    (Metrics.counters metrics)

let histogram_rows metrics =
  let cell v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" v in
  List.map
    (fun (n, l, h) ->
      [
        n ^ Metrics.label_string l;
        string_of_int (Histogram.count h);
        cell (Histogram.p50 h);
        cell (Histogram.p90 h);
        cell (Histogram.p99 h);
        cell (Histogram.max_v h);
      ])
    (Metrics.histograms metrics)

(** Render the full report. [title] heads the output (e.g. the command
    that was timed). *)
let render ?(title = "time report") (r : Recorder.t) =
  let b = Buffer.create 1024 in
  let section name header rows =
    if rows <> [] then begin
      Buffer.add_string b (Printf.sprintf "\n== %s ==\n" name);
      Buffer.add_string b (Support.Tab.render ~header rows);
      Buffer.add_char b '\n'
    end
  in
  Buffer.add_string b
    (Printf.sprintf "=== %s (wall %s ms) ===\n" title (ms (wall r.Recorder.spans)));
  section "span tree" [ "span"; "ms"; "args" ] (tree_rows r.Recorder.spans);
  section "per-stage totals"
    [ "stage"; "count"; "total ms"; "avg ms"; "% wall" ]
    (aggregate_rows r.Recorder.spans);
  section "counters" [ "counter"; "value" ] (counter_rows r.Recorder.metrics);
  section "histograms"
    [ "histogram"; "n"; "p50"; "p90"; "p99"; "max" ]
    (histogram_rows r.Recorder.metrics);
  Buffer.contents b

let print ?title r = print_string (render ?title r)
