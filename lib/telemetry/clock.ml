(** Time sources for the telemetry layer.

    Every span and counter sample is stamped by a [t]. Production code
    uses {!monotonic}; tests inject a {!virtual_clock} so durations are
    deterministic and assertions exact. *)

type t = unit -> float

(* [Unix.gettimeofday] is what the rest of the toolchain already uses
   for wall-clock measurement; keeping the same source means telemetry
   spans agree with any remaining ad-hoc timers. *)
let monotonic : t = Unix.gettimeofday

let fixed v : t = fun () -> v

(** A deterministic clock that advances by [step] seconds on every read,
    starting at [start]. Two runs that read the clock the same number of
    times observe identical timestamps. *)
let virtual_clock ?(start = 0.) ~step () : t =
  let now = ref (start -. step) in
  fun () ->
    now := !now +. step;
    !now

(** Wrap a clock so concurrent reads from multiple domains are safe.
    [monotonic] doesn't need this, but [virtual_clock] is a mutable
    closure; forked recorders used by pool workers share one
    synchronized view of the parent clock. *)
let synchronized (c : t) : t =
  let m = Mutex.create () in
  fun () ->
    Mutex.lock m;
    let v = c () in
    Mutex.unlock m;
    v
