(** A recorder bundles the three telemetry facilities behind one handle:
    a span tree, a metric registry, and the clock that stamps both.
    Every instrumented subsystem takes an optional recorder; [None]
    means "observe nothing" and costs one branch. *)

type t = {
  clock : Clock.t;
  spans : Span.t;
  metrics : Metrics.t;
}

let create ?(clock = Clock.monotonic) () =
  { clock; spans = Span.create ~clock (); metrics = Metrics.create ~clock () }

let with_span t ?cat ?args name f = Span.with_span t.spans ?cat ?args name f

(** [span_opt (Some r) name f] times [f]; [span_opt None name f] is
    [f ()]. The helper instrumented code paths use so that disabled
    telemetry cannot perturb behavior. *)
let span_opt t ?cat ?args name f =
  match t with
  | None -> f ()
  | Some r -> Span.with_span r.spans ?cat ?args name f

let count t ?labels ?(by = 1) name =
  match t with
  | None -> ()
  | Some r -> Metrics.incr ~by (Metrics.counter r.metrics ?labels name)

let observe t ?labels name v =
  match t with
  | None -> ()
  | Some r -> Metrics.observe r.metrics ?labels name v
