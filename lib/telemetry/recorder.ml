(** A recorder bundles the three telemetry facilities behind one handle:
    a span tree, a metric registry, and the clock that stamps both.
    Every instrumented subsystem takes an optional recorder; [None]
    means "observe nothing" and costs one branch. *)

type t = {
  clock : Clock.t;
  spans : Span.t;
  metrics : Metrics.t;
}

let create ?(clock = Clock.monotonic) ?(span_limit = max_int) () =
  {
    clock;
    spans = Span.create ~clock ~limit:span_limit ();
    metrics = Metrics.create ~clock ();
  }

(** A fresh recorder for a concurrent producer (e.g. one pool job). It
    inherits the parent's span retention limit and, by default, its
    clock — pass [~clock:(Clock.synchronized parent.clock)] (one shared
    wrapper for the whole batch!) when the parent clock is stateful.
    Record into the fork from exactly one domain, then graft it back
    with {!merge} at the join. *)
let fork ?clock parent =
  let clock = Option.value clock ~default:parent.clock in
  {
    clock;
    spans = Span.create ~clock ~limit:(Span.limit parent.spans) ();
    metrics = Metrics.create ~clock ();
  }

(** Graft a forked recorder back: its root spans become children of
    [parent] (or roots of [into]), its metrics fold into [into]'s
    registry. Call from the owning domain only, in a deterministic
    order across forks. *)
let merge ~into ?parent child =
  Span.adopt into.spans ?into:parent (Span.roots child.spans);
  Metrics.merge ~into:into.metrics child.metrics

let with_span t ?cat ?args name f = Span.with_span t.spans ?cat ?args name f

(** [span_opt (Some r) name f] times [f]; [span_opt None name f] is
    [f ()]. The helper instrumented code paths use so that disabled
    telemetry cannot perturb behavior. *)
let span_opt t ?cat ?args name f =
  match t with
  | None -> f ()
  | Some r -> Span.with_span r.spans ?cat ?args name f

let count t ?labels ?(by = 1) name =
  match t with
  | None -> ()
  | Some r -> Metrics.incr ~by (Metrics.counter r.metrics ?labels name)

let observe t ?labels name v =
  match t with
  | None -> ()
  | Some r -> Metrics.observe r.metrics ?labels name v

(** Read back a counter's current value (0 when never incremented).
    Counterpart to [count]; robustness tests and [odinc] status lines
    use it to report degradations/rollbacks/faults without walking the
    registry by hand. *)
let value t ?labels name =
  match t with
  | None -> 0
  | Some r -> Metrics.value (Metrics.counter r.metrics ?labels name)
