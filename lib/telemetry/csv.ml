(** CSV export of campaign metrics — see the interface for the schema.
    Rows come out in metric registration order, so the document is as
    deterministic as the recorder it renders. *)

let header = "kind,name,x,value"

let field s =
  if
    String.exists
      (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r')
      s
  then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let row fields = String.concat "," (List.map field fields)

let fmt_float v =
  if Float.is_nan v then "" else Printf.sprintf "%.6f" v

(* Power-of-two bucket floor: 0 -> 0, otherwise the largest 2^k <= v.
   Cycle counts and millisecond latencies both spread nicely on it. *)
let bucket_lo v =
  if v < 1. then 0.
  else Float.of_int (1 lsl int_of_float (Float.log2 v))

let histogram_rows name h =
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let lo = bucket_lo v in
      Hashtbl.replace buckets lo
        (1 + Option.value ~default:0 (Hashtbl.find_opt buckets lo)))
    (Histogram.samples h);
  let bucket_rows =
    Hashtbl.fold (fun lo n acc -> (lo, n) :: acc) buckets []
    |> List.sort compare
    |> List.map (fun (lo, n) ->
           row [ "histogram"; name; fmt_float lo; string_of_int n ])
  in
  let summary stat v = row [ "summary"; name; stat; fmt_float v ] in
  bucket_rows
  @ [
      row [ "summary"; name; "count"; string_of_int (Histogram.count h) ];
      summary "sum" (Histogram.sum h);
      summary "mean" (Histogram.mean h);
      summary "p50" (Histogram.p50 h);
      summary "p90" (Histogram.p90 h);
      summary "p99" (Histogram.p99 h);
    ]

let render ?(extra_rows = []) (r : Recorder.t) =
  let m = r.Recorder.metrics in
  let counter_rows =
    List.concat_map
      (fun c ->
        let name =
          Metrics.counter_name c
          ^ Metrics.label_string (Metrics.counter_labels c)
        in
        row [ "counter"; name; ""; string_of_int (Metrics.value c) ]
        :: List.map
             (fun (ts, v) ->
               row [ "series"; name; fmt_float ts; string_of_int v ])
             (Metrics.series c))
      (Metrics.counters m)
  in
  let histo_rows =
    List.concat_map
      (fun (n, l, h) -> histogram_rows (n ^ Metrics.label_string l) h)
      (Metrics.histograms m)
  in
  String.concat "\n" ((header :: counter_rows) @ histo_rows @ extra_rows)
  ^ "\n"

(* atomic (tmp + rename): a killed campaign never leaves a truncated
   metrics export *)
let write ?extra_rows r path =
  Support.Fsio.write_atomic path (render ?extra_rows r)
