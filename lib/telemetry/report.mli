(** LLVM [-ftime-report]-style text report over a recorder: span tree,
    per-stage aggregates, counters and histogram percentiles. *)

(** Sum of root-span durations — the "% wall" denominator. *)
val wall : Span.t -> float

val render : ?title:string -> Recorder.t -> string

val print : ?title:string -> Recorder.t -> unit
