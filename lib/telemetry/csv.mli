(** CSV export of a recorder's metrics for plotting.

    One flat 4-column table, [kind,name,x,value]:
    - [counter,<name>,,<final value>] — one row per counter,
    - [series,<name>,<timestamp s>,<value>] — one row per sample of a
      series-tracked counter (e.g. coverage over time),
    - [histogram,<name>,<bucket lo>,<count>] — power-of-two bucket
      counts per histogram (bucket lo = 0, 1, 2, 4, 8, …),
    - [summary,<name>,<stat>,<value>] — count/sum/mean/p50/p90/p99 per
      histogram.

    Callers may append extra rows (e.g. per-recompile events) via
    [extra_rows]; {!row} quotes fields for them. *)

val header : string

(** Quote-escape one field for a CSV row. *)
val field : string -> string

(** Build one well-formed row from raw fields. *)
val row : string list -> string

(** The full document, header first, newline-terminated. *)
val render : ?extra_rows:string list -> Recorder.t -> string

(** Write {!render} to [path] atomically (tmp + rename): a killed
    campaign never leaves a truncated export. *)
val write : ?extra_rows:string list -> Recorder.t -> string -> unit
