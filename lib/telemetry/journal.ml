(** Campaign flight recorder: a bounded, crash-safe JSONL event journal.

    Producers ({!Farm.run}, [odinc fuzz --journal]) {!record} structured
    events — barrier summaries, session/link counter deltas, per-probe
    cost attribution — and {!flush} at sync barriers. A flush rewrites
    the whole retained window through {!Support.Fsio.write_atomic}
    (tmp + rename, the {!Support.Objstore} pattern), so a campaign
    killed mid-flush leaves the previous complete journal, and a
    truncated file can only come from a non-atomic filesystem — which
    {!load} recovers from by skipping unparseable lines and reporting
    how many it skipped.

    The journal is bounded: at most [limit] events are retained, oldest
    dropped first, with the drop count carried in the header line —
    long campaigns get a flight-recorder window, not an unbounded log.

    File format: line 1 is a header object
    [{"journal":1,"dropped":N,"events":M}]; every further line is one
    event [{"seq":..,"ts":..,"kind":..,  ...fields}]. Sequence numbers
    are global and monotonic, so a reader can detect the dropped prefix
    even without the header. *)

let format_version = 1

type event = {
  e_seq : int;
  e_ts : float;
  e_kind : string;
  e_fields : (string * Json.t) list;
}

type t = {
  limit : int;
  clock : Clock.t;
  lock : Mutex.t;
  q : event Queue.t;
  mutable seq : int;
  mutable dropped : int;
}

let create ?(limit = 8192) ?(clock = Clock.monotonic) () =
  {
    limit = max 1 limit;
    clock;
    lock = Mutex.create ();
    q = Queue.create ();
    seq = 0;
    dropped = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Append one event; drops the oldest when the window is full. Safe
    from any domain. *)
let record t ~kind fields =
  locked t @@ fun () ->
  let ev = { e_seq = t.seq; e_ts = t.clock (); e_kind = kind; e_fields = fields } in
  t.seq <- t.seq + 1;
  Queue.push ev t.q;
  if Queue.length t.q > t.limit then begin
    ignore (Queue.pop t.q);
    t.dropped <- t.dropped + 1
  end

let length t = locked t (fun () -> Queue.length t.q)
let dropped t = locked t (fun () -> t.dropped)

(** Retained events, oldest first. *)
let events t = locked t (fun () -> List.of_seq (Queue.to_seq t.q))

let event_to_json ev =
  Json.Obj
    ([
       ("seq", Json.Int ev.e_seq);
       ("ts", Json.Float ev.e_ts);
       ("kind", Json.String ev.e_kind);
     ]
    @ ev.e_fields)

let render t =
  locked t @@ fun () ->
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Json.to_string
       (Json.Obj
          [
            ("journal", Json.Int format_version);
            ("dropped", Json.Int t.dropped);
            ("events", Json.Int (Queue.length t.q));
          ]));
  Buffer.add_char b '\n';
  Queue.iter
    (fun ev ->
      Buffer.add_string b (Json.to_string (event_to_json ev));
      Buffer.add_char b '\n')
    t.q;
  Buffer.contents b

(** Publish the retained window to [path] atomically. Called at every
    sync barrier: the on-disk journal is always a complete, parseable
    prefix-dropped window of the campaign so far. *)
let flush t path = Support.Fsio.write_atomic path (render t)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type loaded = {
  l_events : event list;  (** parsed events, seq order *)
  l_dropped : int;  (** header drop count (0 if header missing) *)
  l_skipped : int;  (** unparseable lines (truncation / corruption) *)
}

let event_of_json j =
  match
    ( Option.bind (Json.member "seq" j) Json.to_int,
      Option.bind (Json.member "ts" j) Json.to_float,
      Option.bind (Json.member "kind" j) Json.to_str )
  with
  | Some seq, Some ts, Some kind ->
    let fields =
      match j with
      | Json.Obj fs ->
        List.filter (fun (k, _) -> k <> "seq" && k <> "ts" && k <> "kind") fs
      | _ -> []
    in
    Some { e_seq = seq; e_ts = ts; e_kind = kind; e_fields = fields }
  | _ -> None

(** Load a journal file. Unparseable or truncated lines (a torn write
    on a non-atomic filesystem, a partial copy) are skipped and
    counted, never fatal — the flight recorder must be readable after
    any crash. Raises [Sys_error] only if the file cannot be opened. *)
let load path =
  let body = Support.Fsio.read_file path in
  let lines = String.split_on_char '\n' body in
  let header_dropped = ref 0 in
  let skipped = ref 0 in
  let events = ref [] in
  List.iteri
    (fun i line ->
      if String.trim line = "" then ()
      else
        match Json.of_string line with
        | Error _ -> incr skipped
        | Ok j -> (
          match Json.member "journal" j with
          | Some _ when i = 0 ->
            header_dropped :=
              Option.value ~default:0
                (Option.bind (Json.member "dropped" j) Json.to_int)
          | _ -> (
            match event_of_json j with
            | Some ev -> events := ev :: !events
            | None -> incr skipped)))
    lines;
  {
    l_events = List.rev !events;
    l_dropped = !header_dropped;
    l_skipped = !skipped;
  }

(** Field accessors for report renderers. *)
let field ev name = List.assoc_opt name ev.e_fields

let field_int ev name = Option.bind (field ev name) Json.to_int
let field_float ev name = Option.bind (field ev name) Json.to_float
let field_str ev name = Option.bind (field ev name) Json.to_str
