(** Chrome [trace_event]-format JSON exporter: spans as complete events
    ([ph:"X"], microsecond ts/dur), series counters as counter events
    ([ph:"C"]). Loadable in [chrome://tracing] / Perfetto. *)

val to_json : ?process_name:string -> Recorder.t -> string

(** Atomic (tmp + rename): never leaves a truncated trace. *)
val write : ?process_name:string -> Recorder.t -> string -> unit
