(** Hierarchical timed spans — the single source of timing truth for the
    compile/recompile/execute pipeline. *)

type span

type t

(** [limit] bounds how many children any single parent (or the root
    list) retains: once 2×limit accumulate, the oldest are dropped down
    to [limit] and counted (see {!dropped}). Default: unbounded. *)
val create : ?clock:Clock.t -> ?limit:int -> unit -> t

(** The retention limit the tree was created with. *)
val limit : t -> int

(** Open a span as a child of the innermost open span (or as a root). *)
val enter : t -> ?cat:string -> ?args:(string * string) list -> string -> span

(** Close a span; also closes any still-open descendants. *)
val exit : t -> span -> unit

val add_arg : span -> string -> string -> unit

(** Exception-safe [enter]/[exit] around [f]. *)
val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Seconds; 0 while the span is still open. *)
val duration : span -> float

val name : span -> string
val cat : span -> string

(** Id of the domain that opened the span (the trace [tid]). *)
val tid : span -> int

val args : span -> (string * string) list
val start : span -> float

(** Children of this span discarded by the retention bound. *)
val dropped_children : span -> int

(** Children in chronological order (valid once closed). *)
val children : span -> span list

(** Root spans in chronological order. *)
val roots : t -> span list

(** Graft closed spans (chronological order) under [into], or as roots.
    Used to merge a forked worker's span tree back at a join point. *)
val adopt : t -> ?into:span -> span list -> unit

(** Total spans discarded by the retention bound across the tree. *)
val dropped : t -> int

(** Preorder walk with nesting depth. *)
val iter : t -> (depth:int -> span -> unit) -> unit

(** Every span named [n], in preorder. *)
val find_all : t -> string -> span list

(** Summed duration of every span named [n]. *)
val total : t -> string -> float
