(** Hierarchical timed spans — the single source of timing truth for the
    compile/recompile/execute pipeline. *)

type span

type t

val create : ?clock:Clock.t -> unit -> t

(** Open a span as a child of the innermost open span (or as a root). *)
val enter : t -> ?cat:string -> ?args:(string * string) list -> string -> span

(** Close a span; also closes any still-open descendants. *)
val exit : t -> span -> unit

val add_arg : span -> string -> string -> unit

(** Exception-safe [enter]/[exit] around [f]. *)
val with_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Seconds; 0 while the span is still open. *)
val duration : span -> float

val name : span -> string
val cat : span -> string
val args : span -> (string * string) list
val start : span -> float

(** Children in chronological order (valid once closed). *)
val children : span -> span list

(** Root spans in chronological order. *)
val roots : t -> span list

(** Preorder walk with nesting depth. *)
val iter : t -> (depth:int -> span -> unit) -> unit

(** Every span named [n], in preorder. *)
val find_all : t -> string -> span list

(** Summed duration of every span named [n]. *)
val total : t -> string -> float
