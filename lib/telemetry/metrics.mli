(** Labeled metric registry: monotonic counters and histograms keyed by
    (name, labels), with deterministic (registration-order) iteration. *)

type labels = (string * string) list

type counter

type t

val create : ?clock:Clock.t -> unit -> t

(** Find-or-create. [series] records a (timestamp, value) point per
    update, for counter tracks in the Chrome trace export. *)
val counter : t -> ?labels:labels -> ?series:bool -> string -> counter

val incr : ?by:int -> counter -> unit
val set : counter -> int -> unit
val value : counter -> int

(** Chronological (timestamp, value) samples; empty unless the counter
    was created with [~series:true]. *)
val series : counter -> (float * int) list

val counter_name : counter -> string
val counter_labels : counter -> labels

(** Find-or-create. *)
val histogram : t -> ?labels:labels -> string -> Histogram.t

(** Observe into the named histogram (find-or-create). *)
val observe : t -> ?labels:labels -> string -> float -> unit

(** All counters / histograms in registration order. *)
val counters : t -> counter list

val histograms : t -> (string * labels * Histogram.t) list

(** Fold every metric of [src] into [into] (counter values add,
    histogram samples union); deterministic registration order when
    sources are merged in a fixed order. *)
val merge : into:t -> t -> unit

(** ["{k=v,...}"], empty string for no labels. *)
val label_string : labels -> string

(** Deterministic one-line-per-metric dump. *)
val render : t -> string
