(** Hierarchical spans: the timing backbone of the pipeline.

    A recorder keeps a stack of open spans; [enter]/[exit] (or the
    exception-safe [with_span]) build a tree of timed regions. The
    session's recompilation flow, the optimizer's per-pass timing and
    the CLI's --time-report all read this tree — there is exactly one
    source of timing truth, so a report's stage totals always agree
    with the recompile events derived from the same spans. *)

type span = {
  sp_name : string;
  sp_cat : string;  (** category, e.g. "session", "pass" — trace "cat" field *)
  mutable sp_args : (string * string) list;
  sp_start : float;
  mutable sp_dur : float;  (** seconds; negative while the span is open *)
  mutable sp_children : span list;
      (** newest first while open; chronological once closed *)
}

type t = {
  clock : Clock.t;
  mutable roots : span list;  (** newest first *)
  mutable stack : span list;  (** innermost open span first *)
}

let create ?(clock = Clock.monotonic) () = { clock; roots = []; stack = [] }

let enter t ?(cat = "") ?(args = []) name =
  let sp =
    {
      sp_name = name;
      sp_cat = cat;
      sp_args = args;
      sp_start = t.clock ();
      sp_dur = -1.;
      sp_children = [];
    }
  in
  (match t.stack with
  | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
  | [] -> t.roots <- sp :: t.roots);
  t.stack <- sp :: t.stack;
  sp

let close t sp =
  sp.sp_dur <- t.clock () -. sp.sp_start;
  sp.sp_children <- List.rev sp.sp_children

(** Close [sp]. Any spans opened inside it and not yet exited are closed
    with it (defensive: a forgotten exit cannot corrupt the tree). *)
let exit t sp =
  let rec pop = function
    | [] -> []  (* sp not on the stack: already closed; nothing to do *)
    | top :: rest ->
      close t top;
      if top == sp then rest else pop rest
  in
  t.stack <- pop t.stack

let add_arg sp k v = sp.sp_args <- sp.sp_args @ [ (k, v) ]

let with_span t ?cat ?args name f =
  let sp = enter t ?cat ?args name in
  Fun.protect ~finally:(fun () -> exit t sp) f

let duration sp = if sp.sp_dur < 0. then 0. else sp.sp_dur
let name sp = sp.sp_name
let cat sp = sp.sp_cat
let args sp = sp.sp_args
let start sp = sp.sp_start

(** Children in chronological order (valid once the span is closed). *)
let children sp = if sp.sp_dur < 0. then List.rev sp.sp_children else sp.sp_children

(** Root spans in chronological order. *)
let roots t = List.rev t.roots

(** Preorder walk of every recorded span with its nesting depth. *)
let iter t f =
  let rec walk depth sp =
    f ~depth sp;
    List.iter (walk (depth + 1)) (children sp)
  in
  List.iter (walk 0) (roots t)

(** Every span named [n], in preorder. *)
let find_all t n =
  let acc = ref [] in
  iter t (fun ~depth:_ sp -> if String.equal sp.sp_name n then acc := sp :: !acc);
  List.rev !acc

(** Summed duration of every span named [n]. *)
let total t n = List.fold_left (fun a sp -> a +. duration sp) 0. (find_all t n)
