(** Hierarchical spans: the timing backbone of the pipeline.

    A recorder keeps a stack of open spans; [enter]/[exit] (or the
    exception-safe [with_span]) build a tree of timed regions. The
    session's recompilation flow, the optimizer's per-pass timing and
    the CLI's --time-report all read this tree — there is exactly one
    source of timing truth, so a report's stage totals always agree
    with the recompile events derived from the same spans.

    A tree is single-domain: concurrent producers each record into
    their own tree (see [Recorder.fork]) and the owner grafts the
    results back with [adopt] at the join point. Every span is stamped
    with the integer id of the domain that opened it, which is what the
    Chrome trace export reports as [tid].

    Memory is bounded per parent: once a span (or the root list) has
    accumulated [2 * limit] children, the oldest are discarded down to
    [limit], and the count of discarded spans is kept so reports can
    say "…and N more". Million-execute campaigns therefore hold a
    window of recent spans, not all of them; counters are unaffected
    and stay exact. *)

type span = {
  sp_name : string;
  sp_cat : string;  (** category, e.g. "session", "pass" — trace "cat" field *)
  sp_tid : int;  (** id of the domain that opened the span *)
  mutable sp_args : (string * string) list;
  sp_start : float;
  mutable sp_dur : float;  (** seconds; negative while the span is open *)
  mutable sp_children : span list;
      (** newest first while open; chronological once closed *)
  mutable sp_kept : int;  (** length of sp_children (amortized bound) *)
  mutable sp_dropped : int;  (** children discarded by the ring bound *)
}

type t = {
  clock : Clock.t;
  limit : int;  (** max children retained per parent (and roots) *)
  mutable roots : span list;  (** newest first *)
  mutable roots_kept : int;
  mutable roots_dropped : int;
  mutable stack : span list;  (** innermost open span first *)
}

let create ?(clock = Clock.monotonic) ?(limit = max_int) () =
  {
    clock;
    limit = max 1 limit;
    roots = [];
    roots_kept = 0;
    roots_dropped = 0;
    stack = [];
  }

let limit t = t.limit

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

(* Amortized bound: truncate only once the list doubles past the limit,
   so steady-state appends are O(1). The list is newest-first, so
   [take limit] keeps the most recent spans. Open spans are never
   dropped: an open child is always the newest entry of its parent. *)
let bounded_add t sp parent =
  match parent with
  | Some p ->
      p.sp_children <- sp :: p.sp_children;
      p.sp_kept <- p.sp_kept + 1;
      if t.limit <> max_int && p.sp_kept >= 2 * t.limit then begin
        p.sp_children <- take t.limit p.sp_children;
        p.sp_dropped <- p.sp_dropped + (p.sp_kept - t.limit);
        p.sp_kept <- t.limit
      end
  | None ->
      t.roots <- sp :: t.roots;
      t.roots_kept <- t.roots_kept + 1;
      if t.limit <> max_int && t.roots_kept >= 2 * t.limit then begin
        t.roots <- take t.limit t.roots;
        t.roots_dropped <- t.roots_dropped + (t.roots_kept - t.limit);
        t.roots_kept <- t.limit
      end

let enter t ?(cat = "") ?(args = []) name =
  let sp =
    {
      sp_name = name;
      sp_cat = cat;
      sp_tid = (Domain.self () :> int);
      sp_args = args;
      sp_start = t.clock ();
      sp_dur = -1.;
      sp_children = [];
      sp_kept = 0;
      sp_dropped = 0;
    }
  in
  bounded_add t sp (match t.stack with parent :: _ -> Some parent | [] -> None);
  t.stack <- sp :: t.stack;
  sp

let close t sp =
  sp.sp_dur <- t.clock () -. sp.sp_start;
  sp.sp_children <- List.rev sp.sp_children

(** Close [sp]. Any spans opened inside it and not yet exited are closed
    with it (defensive: a forgotten exit cannot corrupt the tree). *)
let exit t sp =
  let rec pop = function
    | [] -> []  (* sp not on the stack: already closed; nothing to do *)
    | top :: rest ->
      close t top;
      if top == sp then rest else pop rest
  in
  t.stack <- pop t.stack

let add_arg sp k v = sp.sp_args <- sp.sp_args @ [ (k, v) ]

let with_span t ?cat ?args name f =
  let sp = enter t ?cat ?args name in
  Fun.protect ~finally:(fun () -> exit t sp) f

let duration sp = if sp.sp_dur < 0. then 0. else sp.sp_dur
let name sp = sp.sp_name
let cat sp = sp.sp_cat
let tid sp = sp.sp_tid
let args sp = sp.sp_args
let start sp = sp.sp_start
let dropped_children sp = sp.sp_dropped

(** Children in chronological order (valid once the span is closed). *)
let children sp = if sp.sp_dur < 0. then List.rev sp.sp_children else sp.sp_children

(** Root spans in chronological order. *)
let roots t = List.rev t.roots

(** Graft already-closed spans (e.g. the roots of a forked worker tree)
    under [into] when given, else as roots of [t]. [spans] must be in
    chronological order; relative order is preserved. The ring bound is
    not applied here — joins adopt a batch of per-fragment spans whose
    size the caller already controls. *)
let adopt t ?into spans =
  match into with
  | Some p ->
      p.sp_children <- List.rev_append spans p.sp_children;
      p.sp_kept <- p.sp_kept + List.length spans
  | None ->
      t.roots <- List.rev_append spans t.roots;
      t.roots_kept <- t.roots_kept + List.length spans

(** Preorder walk of every recorded span with its nesting depth. *)
let iter t f =
  let rec walk depth sp =
    f ~depth sp;
    List.iter (walk (depth + 1)) (children sp)
  in
  List.iter (walk 0) (roots t)

(** Total spans discarded by the ring bound, across the whole tree. *)
let dropped t =
  let acc = ref t.roots_dropped in
  iter t (fun ~depth:_ sp -> acc := !acc + sp.sp_dropped);
  !acc

(** Every span named [n], in preorder. *)
let find_all t n =
  let acc = ref [] in
  iter t (fun ~depth:_ sp -> if String.equal sp.sp_name n then acc := sp :: !acc);
  List.rev !acc

(** Summed duration of every span named [n]. *)
let total t n = List.fold_left (fun a sp -> a +. duration sp) 0. (find_all t n)
