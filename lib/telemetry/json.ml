(** Minimal JSON value type, printer and recursive-descent parser —
    enough for the benchmark snapshots ({!Snapshot}) and the campaign
    flight recorder ({!Journal}) without an external dependency. The
    printer emits deterministic output (object fields in the order
    given, floats via [%.17g] round-trip format); the parser accepts
    the full JSON grammar except unicode escapes beyond the BMP
    ([\uXXXX] is decoded as a single byte when < 0x80, else kept as
    UTF-8 of the code point). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* keep integral floats readable; ".0" marks them as floats *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec add b ?(indent = 0) ?(cur = 0) v =
  let nl pad =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make pad ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if not (Float.is_finite f) then
      (* nan/inf are not JSON; emit null so the document stays valid *)
      Buffer.add_string b "null"
    else Buffer.add_string b (fmt_float f)
  | String s -> add_escaped b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        nl (cur + indent);
        add b ~indent ~cur:(cur + indent) item)
      items;
    nl cur;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char b ',';
        nl (cur + indent);
        add_escaped b k;
        Buffer.add_char b ':';
        if indent > 0 then Buffer.add_char b ' ';
        add b ~indent ~cur:(cur + indent) item)
      fields;
    nl cur;
    Buffer.add_char b '}'

(** Render; [indent > 0] pretty-prints with that step. *)
let to_string ?(indent = 0) v =
  let b = Buffer.create 1024 in
  add b ~indent v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let parse_lit c lit v =
  if
    c.pos + String.length lit <= String.length c.src
    && String.sub c.src c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    v
  end
  else error c (Printf.sprintf "expected %s" lit)

let utf8_of_code n =
  let b = Buffer.create 4 in
  if n < 0x80 then Buffer.add_char b (Char.chr n)
  else if n < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (n lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (n land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (n lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((n lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (n land 0x3F)))
  end;
  Buffer.contents b

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char b '"'; loop ()
      | Some '\\' -> advance c; Buffer.add_char b '\\'; loop ()
      | Some '/' -> advance c; Buffer.add_char b '/'; loop ()
      | Some 'n' -> advance c; Buffer.add_char b '\n'; loop ()
      | Some 'r' -> advance c; Buffer.add_char b '\r'; loop ()
      | Some 't' -> advance c; Buffer.add_char b '\t'; loop ()
      | Some 'b' -> advance c; Buffer.add_char b '\b'; loop ()
      | Some 'f' -> advance c; Buffer.add_char b '\012'; loop ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then error c "short \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let n =
          try int_of_string ("0x" ^ hex)
          with _ -> error c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        Buffer.add_string b (utf8_of_code n);
        loop ()
      | _ -> error c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c; loop ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      loop ()
    | _ -> ()
  in
  loop ();
  let lexeme = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt lexeme with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; fields_loop ()
        | Some '}' -> advance c
        | _ -> error c "expected ',' or '}'"
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; List [] end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; items_loop ()
        | Some ']' -> advance c
        | _ -> error c "expected ',' or ']'"
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> parse_lit c "true" (Bool true)
  | Some 'f' -> parse_lit c "false" (Bool false)
  | Some 'n' -> parse_lit c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected %C" ch)

(** Parse one JSON document; trailing whitespace allowed, trailing
    garbage is an error. *)
let of_string s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage"
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
