(** Machine-readable benchmark snapshots ([BENCH_<section>.json]):
    versioned schema, atomic publication, and the tolerance-classed
    diff engine behind [odinc bench-diff]. See the implementation
    header for the class semantics. *)

val schema_version : int

(** How much drift the diff engine tolerates for a metric:
    [Exact] — none (deterministic counters); [Cost] — small (modelled
    or lightly sampled quantities); [Wall] — wide bands (host
    wall-clock); [Info] — never gates. *)
type cls = Exact | Cost | Wall | Info

val cls_to_string : cls -> string
val cls_of_string : string -> cls option

type metric = {
  m_name : string;
  m_value : float;
  m_unit : string;
  m_class : cls;
}

type t = {
  s_schema : int;
  s_section : string;
  s_meta : (string * string) list;
  s_metrics : metric list;
}

(** Defaults: unit ["count"], class [Info] — gating is opt-in. *)
val metric : ?unit_:string -> ?cls:cls -> string -> float -> metric

val create : section:string -> ?meta:(string * string) list -> metric list -> t

val find : t -> string -> metric option

(** Current HEAD (first 12 hex chars), read from [.git] without a
    subprocess; ["unknown"] outside a repository. *)
val git_rev : unit -> string

(** git revision, jobs, hostname, creation time + [extra]. Meta is
    documentation — the diff engine never compares it. *)
val default_meta :
  ?jobs:int -> ?extra:(string * string) list -> unit -> (string * string) list

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** Pretty-printed document, trailing newline. *)
val render : t -> string

val parse : string -> (t, string) result

(** ["BENCH_<section>.json"]. *)
val filename : string -> string

(** Write [dir/BENCH_<section>.json] atomically (directory created);
    returns the path. Raises [Sys_error] on I/O failure. *)
val write : dir:string -> t -> string

val read : string -> (t, string) result

(** {2 Diff} *)

type verdict = Pass | Warn | Fail

type tolerances = {
  tol_cost_warn : float;
  tol_cost_fail : float;
  tol_wall_warn : float;
  tol_wall_fail : float;
}

(** cost 2%/10%, wall 10%/15% — a 20% wall regression always fails. *)
val default_tolerances : tolerances

type entry = {
  d_name : string;
  d_class : cls;
  d_unit : string;
  d_base : float option;
  d_cur : float option;
  d_delta : float;  (** signed relative drift *)
  d_verdict : verdict;
  d_note : string;
}

(** Compare [current] against [baseline], metric by metric. Missing
    gated metrics fail; new metrics pass with a note; [ignore_classes]
    exempts whole classes (CI uses [~ignore_classes:[Wall]] against
    committed cross-machine baselines). *)
val diff :
  ?tol:tolerances ->
  ?ignore_classes:cls list ->
  baseline:t ->
  current:t ->
  unit ->
  entry list

(** Most severe verdict in the list ([Pass] for an empty list). *)
val worst : entry list -> verdict
