(** Streaming histogram over float samples with exact percentiles.
    All statistics return [nan] on an empty histogram. *)

type t

val create : unit -> t
val observe : t -> float -> unit
val count : t -> int
val sum : t -> float

(** Samples in observation order. *)
val samples : t -> float list

val mean : t -> float

(** Percentile with linear interpolation; [p] in [0, 100]. *)
val percentile : t -> float -> float

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val min_v : t -> float
val max_v : t -> float

(** Fold [src]'s samples into the first histogram (counts and sums add;
    percentiles see the union of samples). *)
val merge : into:t -> t -> unit
