(** Frame lowering and final code layout: prologue/epilogue insertion,
    frame-slot resolution, and branch-target resolution from block ids to
    instruction indices.

    [finish] is the tier-independent tail of code generation: both the
    optimizing path below and the tier-0 baseline path ({!Baseline})
    feed it a rewritten vcode plus the spill/callee-saved bookkeeping
    their allocator produced. *)

open Mach

(** Number of selected (virtual) instructions — the unit of the modelled
    compile-cost accounting threaded through [?cost] below. *)
let vcode_size (vc : Isel.vcode) =
  Array.fold_left
    (fun acc vb -> acc + List.length vb.Isel.vb_insts)
    0 vc.Isel.vc_blocks

(** Finish compilation of a rewritten (physical-register) vcode: frame
    layout, prologue/epilogue, linear block layout and branch-target
    resolution. *)
let finish ~name (vc : Isel.vcode) spill_slots used_callee =
  (* frame layout: alloca slots then spill slots, 8-byte aligned *)
  let all_slots = vc.Isel.vc_slots @ spill_slots in
  let offsets = Hashtbl.create 16 in
  let frame =
    List.fold_left
      (fun off (slot, size) ->
        Hashtbl.replace offsets slot off;
        off + ((size + 7) / 8 * 8))
      0 all_slots
  in
  let frame = (frame + 15) / 16 * 16 in
  let resolve_slot = function
    | Aslot s -> (
      match Hashtbl.find_opt offsets s with
      | Some off -> Abase (reg_sp, off)
      | None -> failwith "emit: unknown frame slot")
    | a -> a
  in
  let resolve_inst = function
    | Mld (ty, d, a) -> Mld (ty, d, resolve_slot a)
    | Mst (ty, s, a) -> Mst (ty, s, resolve_slot a)
    | Mincmem (ty, a) -> Mincmem (ty, resolve_slot a)
    | Mlea (d, a) -> Mlea (d, resolve_slot a)
    | i -> i
  in
  let saved = Regalloc.ISet.elements used_callee in
  let prologue =
    List.map (fun r -> Mpush r) saved @ (if frame > 0 then [ Mspadj (-frame) ] else [])
  in
  let epilogue =
    (if frame > 0 then [ Mspadj frame ] else [])
    @ List.rev_map (fun r -> Mpop r) saved
  in
  (* expand rets with the epilogue, resolve slots *)
  let expanded_blocks =
    Array.map
      (fun vb ->
        let insts =
          List.concat_map
            (fun inst ->
              match inst with
              | Mret -> epilogue @ [ Mret ]
              | i -> [ resolve_inst i ])
            vb.Isel.vb_insts
        in
        (vb.Isel.vb_id, vb.Isel.vb_label, insts))
      vc.Isel.vc_blocks
  in
  (* layout: prologue, then blocks in order; record start indices *)
  let nblocks = Array.length expanded_blocks in
  let block_start = Array.make nblocks 0 in
  let total =
    let pos = ref (List.length prologue) in
    Array.iteri
      (fun i (_, _, insts) ->
        block_start.(i) <- !pos;
        pos := !pos + List.length insts)
      expanded_blocks;
    !pos
  in
  let code = Array.make (max total 1) Mret in
  List.iteri (fun i inst -> code.(i) <- inst) prologue;
  Array.iteri
    (fun i (_, _, insts) ->
      List.iteri (fun j inst -> code.(block_start.(i) + j) <- inst) insts)
    expanded_blocks;
  (* resolve branch targets from block ids to instruction indices *)
  Array.iteri
    (fun i inst ->
      code.(i) <-
        (match inst with
        | Mjmp t -> Mjmp block_start.(t)
        | Mjnz (r, t) -> Mjnz (r, block_start.(t))
        | Mjtab (r, tbl, d) ->
          Mjtab (r, Array.map (fun (k, t) -> (k, block_start.(t))) tbl, block_start.(d))
        | i -> i))
    code;
  let blocks =
    Array.mapi (fun i (_, label, _) -> (block_start.(i), label)) expanded_blocks
  in
  { mf_name = name; mf_code = code; mf_blocks = blocks; mf_frame = frame }

(** Compile one defined IR function to machine code through the
    optimizing (tier-1) backend. Declares the ["codegen.emit"] fault
    site (one hit per function compiled).

    When [cost] is given, the modelled backend work is accumulated into
    it: one pass of instruction selection, ~4 passes of liveness /
    interval construction / allocation, one rewrite pass and one layout
    pass — 7 scans of the selected code. The tier-0 baseline
    ({!Baseline.compile_func}) charges 2. *)
let compile_func ?cost (fn : Ir.Func.t) =
  Support.Fault.hit "codegen.emit";
  let vc = Isel.select fn in
  (match cost with Some c -> c := !c + (7 * vcode_size vc) | None -> ());
  let assignment, spill_slots, used_callee = Regalloc.allocate vc in
  Regalloc.rewrite vc assignment;
  finish ~name:fn.Ir.Func.name vc spill_slots used_callee

let func_to_string (mf : mfunc) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s: (frame %d)\n" mf.mf_name mf.mf_frame);
  Array.iteri
    (fun i inst ->
      Array.iter
        (fun (start, label) ->
          if start = i then Buffer.add_string buf (Printf.sprintf ".%s:\n" label))
        mf.mf_blocks;
      Buffer.add_string buf (Printf.sprintf "  %3d  %s\n" i (Mach.to_string inst)))
    mf.mf_code;
  Buffer.contents buf
