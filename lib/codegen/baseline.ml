(** Tier-0 baseline code generation: a single-pass backend with no
    liveness analysis and no linear-scan intervals.

    The optimizing path ({!Emit.compile_func}) runs instruction
    selection, an iterative liveness dataflow, interval construction,
    linear-scan allocation and a rewrite — roughly seven scans of the
    selected code, after the whole {!Opt.Pipeline} has already run.
    The baseline tier instead makes one irrevocable decision per
    virtual register at first sight: the first [window] distinct vregs
    each receive a *dedicated* callee-saved register, and every later
    vreg lives in a frame slot. Correctness does not depend on
    liveness because no two windowed vregs ever share a register,
    callee-saved registers survive calls by convention, and isel never
    materializes callee-saved registers itself (only argument/return
    registers and the reserved scratch set appear pre-allocation).
    Spilled traffic reuses the same scratch-register rewrite the
    optimizing tier uses ({!Regalloc.rewrite}), so the two tiers share
    every line of frame layout and branch resolution ({!Emit.finish}).

    The modelled compile cost is 2 passes over the selected code
    (assignment sweep + fused rewrite/layout) versus ~7 for the
    optimizing backend — before counting the [Opt.Pipeline] work the
    baseline tier skips entirely. *)

open Mach

(** Fixed allocation window: one dedicated register per early vreg. *)
let window = List.length callee_saved_pool

(** Compile one defined IR function through the baseline (tier-0)
    backend. Hits the same ["codegen.emit"] fault site as the
    optimizing path: fault plans target "a function compile", not a
    tier. *)
let compile_func ?cost (fn : Ir.Func.t) =
  Support.Fault.hit "codegen.emit";
  let vc = Isel.select fn in
  (match cost with Some c -> c := !c + (2 * Emit.vcode_size vc) | None -> ());
  let assignment : (int, Regalloc.assignment) Hashtbl.t = Hashtbl.create 64 in
  let pool = ref callee_saved_pool in
  let used = ref Regalloc.ISet.empty in
  let next_spill = ref (List.length vc.Isel.vc_slots) in
  let spill_slots = ref [] in
  let assign r =
    if is_virtual r && not (Hashtbl.mem assignment r) then
      match !pool with
      | p :: rest ->
        pool := rest;
        used := Regalloc.ISet.add p !used;
        Hashtbl.replace assignment r (Regalloc.Phys p)
      | [] ->
        let slot = !next_spill in
        incr next_spill;
        spill_slots := (slot, 8) :: !spill_slots;
        Hashtbl.replace assignment r (Regalloc.Spill slot)
  in
  Array.iter
    (fun vb ->
      List.iter
        (fun inst ->
          List.iter assign (Regalloc.reads inst);
          List.iter assign (Regalloc.writes inst))
        vb.Isel.vb_insts)
    vc.Isel.vc_blocks;
  Regalloc.rewrite vc assignment;
  Emit.finish ~name:fn.Ir.Func.name vc (List.rev !spill_slots) !used
