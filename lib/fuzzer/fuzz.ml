(** The coverage-guided fuzzing loop (AFL-style): pick a favored seed,
    mutate, execute, keep inputs that reach new coverage. The loop is
    generic over a [target]; campaign drivers provide targets built on
    the different instrumentation tools. *)

type exec = { ex_cycles : int; ex_new_blocks : int }

type target = { run : string -> exec }

type stats = {
  mutable executions : int;
  mutable total_cycles : int;
  mutable discoveries : int;  (** inputs that found new coverage *)
}

(** Run the seed inputs, then [execs] mutated executions; returns the
    corpus of coverage-increasing inputs and loop statistics. *)
let collect_corpus ~rng ~seeds ~execs (target : target) =
  let corpus = Corpus.create () in
  let stats = { executions = 0; total_cycles = 0; discoveries = 0 } in
  let execute data =
    let r = target.run data in
    stats.executions <- stats.executions + 1;
    stats.total_cycles <- stats.total_cycles + r.ex_cycles;
    if r.ex_new_blocks > 0 then begin
      stats.discoveries <- stats.discoveries + 1;
      Corpus.add corpus ~data ~exec_cycles:r.ex_cycles ~new_blocks:r.ex_new_blocks ()
    end
  in
  List.iter execute seeds;
  for _ = 1 to execs do
    let base =
      match Corpus.pick corpus rng with
      | Some s -> s.Corpus.data
      | None -> ( match seeds with s :: _ -> s | [] -> "\x00")
    in
    let pool = Corpus.inputs corpus in
    execute (Mutate.havoc rng ~pool base)
  done;
  (corpus, stats)
