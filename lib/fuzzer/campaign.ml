(** Campaign drivers: the evaluation methodology of paper Section 5.

    For each workload we (1) run a deterministic fuzzing campaign against
    a coverage build to collect a seed corpus, then (2) replay that same
    corpus under every instrumentation tool and measure execution
    duration (VM cycles). Replaying avoids fuzzing randomness — exactly
    the paper's setup, with the 24-hour campaign compressed into a
    deterministic loop. *)

let entry = "target_main"

(* the only host function workloads use; a fixed modest cost *)
let default_hosts =
  [ ("printf", fun (_ : Vm.t) -> 0L); ("puts", fun (_ : Vm.t) -> 0L) ]

let fresh_vm ?(hosts = default_hosts) exe =
  let vm = Vm.create exe in
  List.iter (fun (n, f) -> Vm.register_host vm n f) hosts;
  vm

let run_once ?hosts ?(setup = fun (_ : Vm.t) -> ()) exe input =
  let vm = fresh_vm ?hosts exe in
  setup vm;
  let addr = Vm.write_buffer vm input in
  ignore (Vm.call vm entry [ addr; Int64.of_int (String.length input) ]);
  vm

(* ------------------------------------------------------------------ *)
(* Energy assignment                                                   *)
(* ------------------------------------------------------------------ *)

(** AFL-style energy for a seed, from the VM's execution profile
    ([Vm.profile] / [Vm.profile_top]): how many mutated executions this
    seed deserves relative to its peers.

    Three multiplicative factors, all integer and deterministic:
    - {b speed} — cheap seeds (cycles well under [avg_cycles]) are
      mutated more, expensive ones less (AFL's [calculate_score]
      exec-time buckets);
    - {b breadth} — seeds whose execution touched more functions carry
      more distinct code to mutate against;
    - {b spread} — cycles concentrated in a single hot function suggest
      a saturated loop, cycles spread across the profile suggest
      unexplored branching, so concentration is penalized.

    [fn_cycles] is the per-function cycle attribution of the discovering
    execution, as returned by [Vm.profile_top]. The result is >= 1 and
    scaled so an average seed (cycles == avg, one function) lands near
    100 — comparable to the classic size/cost score in
    {!Corpus.pick}. *)
let seed_energy ~avg_cycles ~cycles ~fn_cycles =
  let speed =
    if avg_cycles <= 0 then 100
    else if cycles * 4 <= avg_cycles then 400
    else if cycles * 2 <= avg_cycles then 300
    else if cycles <= avg_cycles then 200
    else if cycles <= avg_cycles * 2 then 100
    else if cycles <= avg_cycles * 4 then 50
    else 25
  in
  let breadth = min 16 (List.length fn_cycles) in
  let hottest = List.fold_left (fun a (_, c) -> max a c) 0 fn_cycles in
  let concentration = hottest * 100 / max 1 cycles (* 0..100 *) in
  let spread = 200 - min 100 concentration (* 100..200 *) in
  max 1 (speed * (4 + breadth) * spread / 800)

(* ------------------------------------------------------------------ *)
(* Corpus collection                                                   *)
(* ------------------------------------------------------------------ *)

(** Build a fuzzing target from a SanitizerCoverage build of [m]. *)
let sancov_target (m : Ir.Modul.t) =
  let sc = Baselines.Sancov.build ~keep:[ entry ] ~host:Workloads.Generate.host_functions m in
  let seen = Array.make (max 1 sc.Baselines.Sancov.n_counters) false in
  let run input =
    let vm = run_once sc.Baselines.Sancov.exe input in
    let covered = Baselines.Sancov.covered_counters vm sc in
    let fresh = List.filter (fun i -> not seen.(i)) covered in
    List.iter (fun i -> seen.(i) <- true) fresh;
    { Fuzz.ex_cycles = vm.Vm.cycles; ex_new_blocks = List.length fresh }
  in
  { Fuzz.run }

type prepared = {
  profile : Workloads.Profile.t;
  source : string;
  modul : Ir.Modul.t;  (** pristine frontend output (never optimized) *)
  corpus : string list;  (** replay inputs, in discovery order *)
  fuzz_stats : Fuzz.stats;
}

(* When a recorder is present, wrap the fuzzing target so every
   execution bumps the exec counter and coverage discoveries accumulate
   into a time-series counter (a coverage-over-time track in the Chrome
   trace export). The wrapped target runs the exact same executions. *)
let observed_target telemetry (target : Fuzz.target) =
  match telemetry with
  | None -> target
  | Some (r : Telemetry.Recorder.t) ->
    let execs =
      Telemetry.Metrics.counter r.Telemetry.Recorder.metrics "campaign.execs"
    in
    let coverage =
      Telemetry.Metrics.counter r.Telemetry.Recorder.metrics ~series:true
        "campaign.coverage"
    in
    {
      Fuzz.run =
        (fun input ->
          let e = target.Fuzz.run input in
          Telemetry.Metrics.incr execs;
          if e.Fuzz.ex_new_blocks > 0 then
            Telemetry.Metrics.incr ~by:e.Fuzz.ex_new_blocks coverage;
          e);
    }

(** Compile a workload and fuzz it to collect the replay corpus.
    [rounds] repeats the corpus during replay (steady-state throughput,
    like replaying the seeds of a long campaign several times).
    [telemetry] records frontend/fuzz spans plus exec and
    coverage-over-time counters; observation only. *)
let prepare ?telemetry ?(fuzz_execs = 400) ?(rounds = 1)
    (profile : Workloads.Profile.t) =
  Telemetry.Recorder.span_opt telemetry ~cat:"campaign"
    ~args:[ ("program", profile.Workloads.Profile.name) ]
    "prepare"
  @@ fun () ->
  let source =
    Telemetry.Recorder.span_opt telemetry ~cat:"campaign" "generate" (fun () ->
        Workloads.Generate.source profile)
  in
  let modul =
    Telemetry.Recorder.span_opt telemetry ~cat:"campaign" "frontend" (fun () ->
        Minic.Lower.compile ~name:profile.Workloads.Profile.name source)
  in
  let target = observed_target telemetry (sancov_target modul) in
  let rng = Support.Rng.create (profile.Workloads.Profile.seed * 31 + 7) in
  let seeds = Workloads.Generate.seed_inputs profile in
  let corpus, fuzz_stats =
    Telemetry.Recorder.span_opt telemetry ~cat:"campaign" "fuzz" (fun () ->
        Fuzz.collect_corpus ~rng ~seeds ~execs:fuzz_execs target)
  in
  Telemetry.Recorder.count telemetry ~by:(Corpus.size corpus)
    "campaign.corpus_inputs";
  let base_inputs = Corpus.inputs corpus in
  let replay_inputs =
    List.concat (List.init (max 1 rounds) (fun _ -> base_inputs))
  in
  { profile; source; modul; corpus = replay_inputs; fuzz_stats }

(* ------------------------------------------------------------------ *)
(* Replay under each tool                                              *)
(* ------------------------------------------------------------------ *)

type replay = {
  r_tool : string;
  r_total_cycles : int;
  r_per_input : int list;
}

let sum = List.fold_left ( + ) 0

(** Baseline: the uninstrumented O2 binary. *)
let replay_plain (p : prepared) =
  let exe = Baselines.Plain.build ~keep:[ entry ] ~host:Workloads.Generate.host_functions p.modul in
  let per_input =
    List.map (fun input -> (run_once exe input).Vm.cycles) p.corpus
  in
  { r_tool = "baseline"; r_total_cycles = sum per_input; r_per_input = per_input }

(** SanitizerCoverage: static instrumentation after optimization. *)
let replay_sancov (p : prepared) =
  let sc = Baselines.Sancov.build ~keep:[ entry ] ~host:Workloads.Generate.host_functions p.modul in
  let per_input =
    List.map
      (fun input -> (run_once sc.Baselines.Sancov.exe input).Vm.cycles)
      p.corpus
  in
  { r_tool = "SanCov"; r_total_cycles = sum per_input; r_per_input = per_input }

(** DrCov / libInst: DBI over the plain binary. *)
let replay_dbi kind (p : prepared) =
  let exe = Baselines.Plain.build ~keep:[ entry ] ~host:Workloads.Generate.host_functions p.modul in
  let dbi = Baselines.Dbi.create kind in
  let per_input =
    List.map
      (fun input ->
        (run_once ~setup:(Baselines.Dbi.attach dbi) exe input).Vm.cycles)
      p.corpus
  in
  let name =
    match kind with Baselines.Dbi.Drcov -> "DrCov" | Baselines.Dbi.Libinst -> "libInst"
  in
  { r_tool = name; r_total_cycles = sum per_input; r_per_input = per_input }

type odin_replay = {
  o_replay : replay;
  o_session : Odin.Session.t;
  o_recompiles : int;
  o_probes_pruned : int;
  o_degraded : int;  (** refreshes that completed with degraded fragments *)
  o_rollbacks : int;  (** refreshes rolled back to the previous executable *)
}

(** OdinCov: instrument-first coverage with (optionally) on-the-fly probe
    pruning and recompilation between executions. The reported cycles are
    execution-only; recompilation overhead is recorded separately in the
    session's events (Figures 11/12 and the 82 ms claim). When
    [telemetry] is given the session records its build spans on it, and
    the replay adds exec-cycle histograms plus recompile/prune counters. *)
let replay_odincov ?telemetry ?(prune = true) ?(mode = Odin.Partition.Auto)
    ?cache_dir (p : prepared) =
  let base = Ir.Clone.clone_module p.modul in
  let session =
    (* tier pinned off, not read from ODIN_TIER: the figure-8/9 overhead
       ratios measure instrumentation against the optimizing tier, and a
       replay must not change shape with the caller's environment *)
    Odin.Session.create ~mode ~keep:[ entry ]
      ~runtime_globals:[ Odin.Cov.runtime_global base ]
      ~host:Workloads.Generate.host_functions ?cache_dir ?telemetry
      ~tiered:false base
  in
  let cov = Odin.Cov.setup session in
  ignore (Odin.Session.build session);
  let recompiles = ref 0 in
  let pruned = ref 0 in
  let degraded = ref 0 in
  let rollbacks = ref 0 in
  let per_input =
    List.map
      (fun input ->
        let exe = Odin.Session.executable session in
        let vm =
          Telemetry.Recorder.span_opt telemetry ~cat:"campaign" "execute"
            (fun () -> run_once exe input)
        in
        Telemetry.Recorder.observe telemetry "campaign.exec_cycles"
          (float_of_int vm.Vm.cycles);
        ignore (Odin.Cov.harvest cov vm);
        if prune then begin
          let n = Odin.Cov.prune_fired cov in
          if n > 0 then begin
            pruned := !pruned + n;
            Telemetry.Recorder.count telemetry ~by:n "campaign.probes_pruned";
            (* transactional refresh: a fault-degraded or rolled-back
               rebuild must not abort the campaign — the session still
               holds a consistent executable either way *)
            match Odin.Session.try_refresh session with
            | Some Odin.Session.Ok ->
              incr recompiles;
              Telemetry.Recorder.count telemetry "campaign.recompiles"
            | Some (Odin.Session.Degraded fids) ->
              incr recompiles;
              degraded := !degraded + 1;
              Telemetry.Recorder.count telemetry "campaign.recompiles";
              Telemetry.Recorder.count telemetry
                ~by:(List.length fids)
                "campaign.fragments_degraded"
            | Some (Odin.Session.Rolled_back _) ->
              incr rollbacks;
              Telemetry.Recorder.count telemetry "campaign.refresh_rollbacks"
            | None -> ()
          end
        end;
        vm.Vm.cycles)
      p.corpus
  in
  {
    o_replay =
      {
        r_tool = (if prune then "OdinCov" else "OdinCov-NoPrune");
        r_total_cycles = sum per_input;
        r_per_input = per_input;
      };
    o_session = session;
    o_recompiles = !recompiles;
    o_probes_pruned = !pruned;
    o_degraded = !degraded;
    o_rollbacks = !rollbacks;
  }
