(** Seed corpus: inputs that contributed new coverage, with the classic
    favoring of small/fast seeds for scheduling. *)

type seed = {
  data : string;
  exec_cycles : int;  (** cost of the discovering execution *)
  new_blocks : int;  (** coverage it contributed when found *)
  energy : int;
      (** explicit scheduling weight (see {!Campaign.seed_energy});
          [0] means "unassigned" and falls back to the size/cost score *)
}

type t = { mutable seeds : seed list (* newest first *) }

let create () = { seeds = [] }

let add t ?(energy = 0) ~data ~exec_cycles ~new_blocks () =
  t.seeds <- { data; exec_cycles; new_blocks; energy } :: t.seeds

let size t = List.length t.seeds

let seeds t = List.rev t.seeds

let inputs t = List.rev_map (fun s -> s.data) t.seeds |> List.rev

(** Pick a seed biased toward small, cheap, high-yield entries; a seed
    carrying an explicit energy is weighted by it instead. *)
let pick t rng =
  match t.seeds with
  | [] -> None
  | all ->
    let scored =
      List.map
        (fun s ->
          let score =
            if s.energy > 0 then s.energy
            else
              (1 + s.new_blocks) * 1000 / (1 + (s.exec_cycles / 1000) + String.length s.data)
          in
          (max 1 score, s))
        all
    in
    let total = List.fold_left (fun acc (w, _) -> acc + w) 0 scored in
    let roll = Support.Rng.int rng total in
    let rec walk acc = function
      | [] -> None
      | (w, s) :: rest -> if roll < acc + w then Some s else walk (acc + w) rest
    in
    walk 0 scored
