(** Campaign drivers implementing the paper's evaluation methodology
    (Section 5): fuzz a coverage build once to collect a corpus, then
    replay that corpus under every instrumentation tool and measure
    execution duration in VM cycles. *)

val entry : string

val default_hosts : (string * (Vm.t -> int64)) list

val fresh_vm : ?hosts:(string * (Vm.t -> int64)) list -> Link.Linker.exe -> Vm.t

(** Run one input through [entry] in a fresh VM; returns the VM (cycles,
    memory, coverage state readable). [setup] runs before execution
    (e.g. to attach a DBI engine). *)
val run_once :
  ?hosts:(string * (Vm.t -> int64)) list ->
  ?setup:(Vm.t -> unit) ->
  Link.Linker.exe ->
  string ->
  Vm.t

(** A fuzzing target backed by a SanitizerCoverage build of the module. *)
val sancov_target : Ir.Modul.t -> Fuzz.target

(** AFL-style energy for a seed from the VM's execution profile: cheap
    executions ([cycles] under [avg_cycles]), broad function coverage
    and cycle spread (vs. one saturated hot loop) all raise the weight.
    [fn_cycles] is per-function cycle attribution as returned by
    [Vm.profile_top]. Deterministic, >= 1, ~100 for an average seed;
    feed the result to {!Corpus.add}'s [?energy]. *)
val seed_energy :
  avg_cycles:int -> cycles:int -> fn_cycles:(string * int) list -> int

type prepared = {
  profile : Workloads.Profile.t;
  source : string;
  modul : Ir.Modul.t;  (** pristine frontend output (never optimized) *)
  corpus : string list;  (** replay inputs, in discovery order *)
  fuzz_stats : Fuzz.stats;
}

(** Compile a workload and fuzz it to collect the replay corpus;
    [rounds] repeats the corpus during replay (steady-state throughput).
    [telemetry] records generate/frontend/fuzz spans plus exec and
    coverage-over-time counters (observation only — the same executions
    run either way). *)
val prepare :
  ?telemetry:Telemetry.Recorder.t ->
  ?fuzz_execs:int ->
  ?rounds:int ->
  Workloads.Profile.t ->
  prepared

type replay = { r_tool : string; r_total_cycles : int; r_per_input : int list }

val replay_plain : prepared -> replay
val replay_sancov : prepared -> replay
val replay_dbi : Baselines.Dbi.kind -> prepared -> replay

type odin_replay = {
  o_replay : replay;
  o_session : Odin.Session.t;
  o_recompiles : int;
  o_probes_pruned : int;
  o_degraded : int;  (** refreshes that completed with degraded fragments *)
  o_rollbacks : int;  (** refreshes rolled back to the previous executable *)
}

(** OdinCov replay: instrument-first coverage with (by default)
    Untracer-style pruning and on-the-fly recompilation between
    executions. Cycles are execution-only; recompile costs live in the
    session's events. [telemetry] receives the session's build spans
    plus exec-cycle histograms and recompile/prune counters. Refreshes
    are transactional ({!Odin.Session.try_refresh}): a degraded or
    rolled-back rebuild is counted, not fatal. [cache_dir] enables the
    session's persistent object store so a restarted campaign on the
    same workload starts warm. *)
val replay_odincov :
  ?telemetry:Telemetry.Recorder.t ->
  ?prune:bool ->
  ?mode:Odin.Partition.mode ->
  ?cache_dir:string ->
  prepared ->
  odin_replay
