(** Seed corpus with AFL-style favoring of small/fast/high-yield seeds. *)

type seed = { data : string; exec_cycles : int; new_blocks : int; energy : int }

type t

val create : unit -> t

(** [energy], when positive, is an explicit scheduling weight (see
    {!Campaign.seed_energy}); when omitted {!pick} falls back to the
    classic size/cost score. *)
val add :
  t -> ?energy:int -> data:string -> exec_cycles:int -> new_blocks:int -> unit -> unit

val size : t -> int

(** Seeds in discovery order. *)
val seeds : t -> seed list

(** Seed inputs in discovery order. *)
val inputs : t -> string list

(** Weighted random pick; a seed with explicit energy is weighted by
    it, otherwise biased toward small, cheap, high-yield seeds. [None]
    when empty. *)
val pick : t -> Support.Rng.t -> seed option
