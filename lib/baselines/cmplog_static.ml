(** AFL++-style CmpLog binary: comparison-operand logging instrumented
    *after* optimization (the industry pipeline of paper Figure 1). The
    logged operands are whatever the optimizer left behind — after the
    Figure 2 range fold, that is [x - L] rather than [x], which breaks the
    input-to-state correspondence the logging exists for. The contrast
    with Odin's instrument-first CmpLog is the paper's central
    correctness claim; `bench/main.exe fig2` quantifies it. *)

let runtime_fn = "__cmplog_static"

type record = { sr_pid : int; sr_lhs : int64; sr_rhs : int64 }

type t = {
  exe : Link.Linker.exe;
  n_probes : int;
  log : record Queue.t;
}

(* Names derive from the probe id, not a mutable counter, mirroring
   Odin.Cmplog: deterministic output for identical input. *)
let gensym fn ~pid hint = Ir.Func.fresh_name fn (Printf.sprintf "%s.p%d" hint pid)

(* Insert a logging call before [cmp] (mirrors Odin's CmpLog insertion,
   but on the post-optimization IR). *)
let insert_log (fn : Ir.Func.t) (blk : Ir.Func.block) (cmp : Ir.Ins.ins) pid =
  match cmp.Ir.Ins.kind with
  | Ir.Ins.Icmp (_, lhs, rhs) ->
    let widen hint v tail =
      match Ir.Ins.value_ty v with
      | Ir.Types.I64 | Ir.Types.Ptr -> (v, tail)
      | _ ->
        let name = gensym fn ~pid hint in
        let cast =
          Ir.Ins.mk ~volatile:true ~id:name ~ty:Ir.Types.I64
            (Ir.Ins.Cast (Ir.Ins.Sext, v))
        in
        (Ir.Ins.Reg (Ir.Types.I64, name), cast :: tail)
    in
    let lhs64, pre = widen "scmpargl" lhs [] in
    let rhs64, pre = widen "scmpargr" rhs pre in
    let call =
      Ir.Ins.mk ~volatile:true ~id:"" ~ty:Ir.Types.Void
        (Ir.Ins.Call
           (Ir.Ins.Direct runtime_fn, [ Ir.Builder.i64 pid; lhs64; rhs64 ]))
    in
    let rec insert_before = function
      | [] -> List.rev pre @ [ call ]
      | i :: rest when i == cmp -> List.rev pre @ (call :: i :: rest)
      | i :: rest -> i :: insert_before rest
    in
    blk.Ir.Func.insns <- insert_before blk.Ir.Func.insns
  | _ -> ()

(** Optimize a clone of [m], then instrument every remaining comparison. *)
let build ?(keep = [ "target_main" ]) ?(host = []) (m : Ir.Modul.t) =
  let copy = Ir.Clone.clone_module m in
  ignore (Opt.Pipeline.run ~keep copy);
  let pid = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun blk ->
          (* snapshot: insertion mutates the list *)
          let cmps =
            List.filter
              (fun (i : Ir.Ins.ins) ->
                match i.Ir.Ins.kind with
                | Ir.Ins.Icmp _ -> not i.Ir.Ins.volatile
                | _ -> false)
              blk.Ir.Func.insns
          in
          List.iter
            (fun cmp ->
              insert_log f blk cmp !pid;
              incr pid)
            cmps)
        f)
    (Ir.Modul.defined_functions copy);
  ignore
    (Ir.Modul.declare_function copy ~name:runtime_fn
       ~params:[ (Ir.Types.I64, "pid"); (Ir.Types.I64, "lhs"); (Ir.Types.I64, "rhs") ]
       ~ret:Ir.Types.Void);
  Ir.Verify.run_exn copy;
  let obj = Link.Objfile.of_module copy in
  let exe = Link.Linker.link ~host:(runtime_fn :: host) [ obj ] in
  { exe; n_probes = !pid; log = Queue.create () }

(** The host hook to register with the VM under {!runtime_fn}. *)
let host_hook t (vm : Vm.t) =
  Queue.add
    {
      sr_pid = Int64.to_int vm.Vm.regs.(0);
      sr_lhs = vm.Vm.regs.(1);
      sr_rhs = vm.Vm.regs.(2);
    }
    t.log;
  0L

(** Drain the records collected since the last call, converted to the
    common CmpLog record type so the same solver consumes both. *)
let drain t =
  let out = ref [] in
  Queue.iter
    (fun r ->
      out :=
        {
          Odin.Cmplog.rec_pid = r.sr_pid;
          rec_lhs = r.sr_lhs;
          rec_rhs = r.sr_rhs;
        }
        :: !out)
    t.log;
  Queue.clear t.log;
  List.rev !out
