(** Global probe-saturation tallies for multi-campaign pruning.

    Untracer-style pruning removes a coverage probe once it has fired —
    but in a fuzzing farm each worker only sees its own executions, and
    pruning locally would make instrumentation state diverge across
    workers. Instead every worker reports which probes fired in each
    execution, the farm records one {e vote} per (probe, execution)
    here, and a probe is pruned only when its tally reaches a global
    quorum — so the farm converges to the same pruned instrumentation a
    long single campaign would.

    Purely sequential: the farm tallies at its sync barrier, in global
    execution order. *)

type t = { tally : (int, int) Hashtbl.t (* pid -> executions it fired in *) }

let create () = { tally = Hashtbl.create 97 }

(** Record one execution in which probe [pid] fired. *)
let record t ~pid =
  Hashtbl.replace t.tally pid (1 + Option.value ~default:0 (Hashtbl.find_opt t.tally pid))

let count t pid = Option.value ~default:0 (Hashtbl.find_opt t.tally pid)

(** Probes whose tally has reached [quorum], excluding those [already]
    acted upon; sorted ascending so callers apply them in a
    deterministic order. A non-positive [quorum] never saturates. *)
let saturated t ~quorum ~already =
  if quorum <= 0 then []
  else
    Hashtbl.fold
      (fun pid n acc -> if n >= quorum && not (already pid) then pid :: acc else acc)
      t.tally []
    |> List.sort compare

(** Fold the other tally into [into] (e.g. a late worker's local votes). *)
let merge ~into other =
  Hashtbl.iter
    (fun pid n ->
      Hashtbl.replace into.tally pid (n + Option.value ~default:0 (Hashtbl.find_opt into.tally pid)))
    other.tally

(** Number of distinct probes with at least one vote. *)
let distinct t = Hashtbl.length t.tally
