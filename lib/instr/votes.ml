(** Global probe-saturation tallies for multi-campaign pruning.

    Untracer-style pruning removes a coverage probe once it has fired —
    but in a fuzzing farm each worker only sees its own executions, and
    pruning locally would make instrumentation state diverge across
    workers. Instead every worker reports which probes fired in each
    execution, the farm records one {e vote} per (probe, execution)
    here, and a probe is pruned only when its tally reaches a global
    quorum — so the farm converges to the same pruned instrumentation a
    long single campaign would.

    Votes are weighted: a healthy worker's vote counts 1.0, while the
    supervisor can discount evidence from a worker that was killed and
    restarted mid-round (its observations may come from a corrupted
    run). Integer-weighted use degenerates to the original exact
    integer tally, so [count]/[saturated] keep their historical
    semantics for weight-1.0 callers.

    Purely sequential: the farm tallies at its sync barrier, in global
    execution order. *)

type t = { tally : (int, float) Hashtbl.t (* pid -> weighted fired-execution votes *) }

let create () = { tally = Hashtbl.create 97 }

(** Record one execution in which probe [pid] fired, worth [weight]
    votes (default 1.0). *)
let record ?(weight = 1.0) t ~pid =
  Hashtbl.replace t.tally pid (weight +. Option.value ~default:0.0 (Hashtbl.find_opt t.tally pid))

(** Exact weighted tally for [pid] (0.0 when never seen). *)
let tally t pid = Option.value ~default:0.0 (Hashtbl.find_opt t.tally pid)

(** Whole votes recorded for [pid] (weighted tally, floored). *)
let count t pid = int_of_float (floor (tally t pid +. 1e-9))

(** Probes whose weighted tally has reached [quorum], excluding those
    [already] acted upon; sorted ascending so callers apply them in a
    deterministic order. A non-positive [quorum] never saturates. *)
let saturated t ~quorum ~already =
  if quorum <= 0 then []
  else
    let q = float_of_int quorum -. 1e-9 in
    Hashtbl.fold
      (fun pid n acc -> if n >= q && not (already pid) then pid :: acc else acc)
      t.tally []
    |> List.sort compare

(** Fold the other tally into [into] (e.g. a late worker's local votes). *)
let merge ~into other =
  Hashtbl.iter
    (fun pid n ->
      Hashtbl.replace into.tally pid (n +. Option.value ~default:0.0 (Hashtbl.find_opt into.tally pid)))
    other.tally

(** Number of distinct probes with at least one vote. *)
let distinct t = Hashtbl.length t.tally

(** Every (pid, weighted tally) pair, ascending by pid — for
    checkpointing. *)
let entries t =
  Hashtbl.fold (fun pid n acc -> (pid, n) :: acc) t.tally [] |> List.sort compare

(** Rebuild a tally from [entries] output. *)
let restore pairs =
  let t = create () in
  List.iter (fun (pid, n) -> Hashtbl.replace t.tally pid n) pairs;
  t
