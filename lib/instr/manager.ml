(** PatchManager: dynamic adding, deleting and changing of probes (paper
    Section 4). Tracks which probes changed since the last recompilation
    so the scheduler can bound the recompilation scope.

    Every dirty-state query is O(changed), not O(probes): the [changed]
    set is a hashtable of probe ids, and a persistent by-target index
    maps a symbol to the probes registered against it so back-propagation
    (Algorithm 2, lines 13-17) can collect a fragment's probes without
    filtering the whole probe list. *)

type t = {
  mutable probes : Probe.t list;  (** newest first *)
  by_id : (int, Probe.t) Hashtbl.t;
  by_target : (string, Probe.t list) Hashtbl.t;
      (** symbol -> live probes targeting it, newest first; maintained by
          [add]/[remove] so it is never rebuilt by a scan *)
  mutable next_id : int;
  changed : (int, unit) Hashtbl.t;  (** probe ids changed since last build *)
  removed_targets : (string, unit) Hashtbl.t;
      (** symbols whose probes were removed — they must be recompiled even
          though the probe object is gone *)
  toggles : (int, int) Hashtbl.t;
      (** cumulative enable/disable flips + removals per probe id; kept
          after removal — cost attribution outlives the probe *)
}

let create () =
  {
    probes = [];
    by_id = Hashtbl.create 64;
    by_target = Hashtbl.create 64;
    next_id = 0;
    changed = Hashtbl.create 64;
    removed_targets = Hashtbl.create 16;
    toggles = Hashtbl.create 64;
  }

let bump_toggle t pid =
  Hashtbl.replace t.toggles pid
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.toggles pid))

let add t ?(enabled = true) ~target payload =
  let p = { Probe.pid = t.next_id; target; enabled; payload } in
  t.next_id <- t.next_id + 1;
  t.probes <- p :: t.probes;
  Hashtbl.replace t.by_id p.Probe.pid p;
  Hashtbl.replace t.by_target target
    (p :: Option.value ~default:[] (Hashtbl.find_opt t.by_target target));
  Hashtbl.replace t.changed p.Probe.pid ();
  p

let get t pid = Hashtbl.find_opt t.by_id pid

let get_exn t pid =
  match get t pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Manager.get_exn: no probe #%d" pid)

(** Removing a probe dirties its target symbol: the next recompilation
    regenerates the symbol without the probe's code. *)
let remove t (p : Probe.t) =
  if Hashtbl.mem t.by_id p.Probe.pid then bump_toggle t p.Probe.pid;
  t.probes <- List.filter (fun q -> q.Probe.pid <> p.Probe.pid) t.probes;
  Hashtbl.remove t.by_id p.Probe.pid;
  (match Hashtbl.find_opt t.by_target p.Probe.target with
  | None -> ()
  | Some ps -> (
    match List.filter (fun q -> q.Probe.pid <> p.Probe.pid) ps with
    | [] -> Hashtbl.remove t.by_target p.Probe.target
    | kept -> Hashtbl.replace t.by_target p.Probe.target kept));
  Hashtbl.remove t.changed p.Probe.pid;
  Hashtbl.replace t.removed_targets p.Probe.target ()

let set_enabled t (p : Probe.t) enabled =
  if p.Probe.enabled <> enabled then begin
    p.Probe.enabled <- enabled;
    bump_toggle t p.Probe.pid;
    Hashtbl.replace t.changed p.Probe.pid ()
  end

(** Batch N probe toggles into the dirty set in one pass. Semantically
    [List.iter (set_enabled t)]: each flip is O(1) into the same
    [changed] hashtable, so the whole batch is one dirty-set update that
    the next rebuild drains with a single [changed_targets] pass and a
    single schedule — the mutation-campaign hot path (disarm previous
    mutant + arm next one, or arm a whole mutant set at once). *)
let toggle_many t toggles =
  List.iter (fun (p, enabled) -> set_enabled t p enabled) toggles

(** Mark a probe's logic as modified (e.g. its payload was retargeted). *)
let touch t (p : Probe.t) = Hashtbl.replace t.changed p.Probe.pid ()

(** Cumulative instrumentation-change count for [pid]: enable/disable
    flips plus the removal, kept after the probe is gone. *)
let toggle_count t pid = Option.value ~default:0 (Hashtbl.find_opt t.toggles pid)

let iter f t = List.iter f (List.rev t.probes)
let to_list t = List.rev t.probes
let count t = List.length t.probes

(** Live probes registered against [target], oldest first (probe ids
    ascending — the same relative order {!to_list} would give). *)
let probes_on t target =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.by_target target))

let changed_probes t =
  Hashtbl.fold (fun pid () acc -> Hashtbl.find t.by_id pid :: acc) t.changed []
  |> List.sort (fun (a : Probe.t) b -> compare a.Probe.pid b.Probe.pid)

let changed_targets t =
  let s = Hashtbl.create 16 in
  Hashtbl.iter
    (fun pid () ->
      Hashtbl.replace s (Hashtbl.find t.by_id pid).Probe.target ())
    t.changed;
  Hashtbl.iter (fun target () -> Hashtbl.replace s target ()) t.removed_targets;
  Hashtbl.fold (fun k () acc -> k :: acc) s [] |> List.sort String.compare

let has_changes t =
  Hashtbl.length t.changed > 0 || Hashtbl.length t.removed_targets > 0

(** Called by the engine after a successful rebuild. *)
let clear_changes t =
  Hashtbl.reset t.changed;
  Hashtbl.reset t.removed_targets
