(** Global probe-saturation tallies for multi-campaign pruning: workers
    report which probes fired per execution; a probe is pruned only when
    its vote count reaches a global quorum, so a fuzzing farm converges
    to the same pruned instrumentation a long single campaign would. *)

type t

val create : unit -> t

(** Record one execution in which probe [pid] fired. *)
val record : t -> pid:int -> unit

(** Votes recorded for [pid] (0 when never seen). *)
val count : t -> int -> int

(** Probes with at least [quorum] votes, excluding those [already]
    acted upon; sorted ascending. Non-positive [quorum] never
    saturates. *)
val saturated : t -> quorum:int -> already:(int -> bool) -> int list

(** Fold [other]'s votes into [into]. *)
val merge : into:t -> t -> unit

(** Distinct probes with at least one vote. *)
val distinct : t -> int
