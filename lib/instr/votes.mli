(** Global probe-saturation tallies for multi-campaign pruning: workers
    report which probes fired per execution; a probe is pruned only when
    its weighted vote tally reaches a global quorum, so a fuzzing farm
    converges to the same pruned instrumentation a long single campaign
    would. Votes default to weight 1.0; a supervisor can discount a
    killed-and-restarted worker's evidence with a fractional weight. *)

type t

val create : unit -> t

(** Record one execution in which probe [pid] fired, worth [weight]
    votes (default 1.0 — the historical integer tally). *)
val record : ?weight:float -> t -> pid:int -> unit

(** Exact weighted tally for [pid] (0.0 when never seen). *)
val tally : t -> int -> float

(** Whole votes recorded for [pid]: the weighted tally, floored.
    Matches the historical integer count for weight-1.0 callers. *)
val count : t -> int -> int

(** Probes whose weighted tally reached [quorum], excluding those
    [already] acted upon; sorted ascending. Non-positive [quorum] never
    saturates. *)
val saturated : t -> quorum:int -> already:(int -> bool) -> int list

(** Fold [other]'s votes into [into]. *)
val merge : into:t -> t -> unit

(** Distinct probes with at least one vote. *)
val distinct : t -> int

(** Every (pid, weighted tally), ascending by pid — checkpoint export. *)
val entries : t -> (int * float) list

(** Rebuild a tally from {!entries} output. *)
val restore : (int * float) list -> t
