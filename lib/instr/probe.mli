(** Probes: the unit of on-demand instrumentation (paper Section 4).

    A probe targets one symbol and carries scheme-specific, freely
    annotatable state — the paper's [CmpProbe] stores the instrumented
    instruction and dynamic profiling results; these payloads mirror that
    structure for the three schemes shipped with the framework. *)

type cov_state = {
  cov_block : string;  (** IR block label within the target function *)
  mutable cov_hits : int;  (** profiling annotation: accumulated hit count *)
}

type cmp_state = {
  cmp_ins : Ir.Ins.ins;  (** the comparison in the pristine IR *)
  mutable cmp_solved : bool;  (** both outcomes seen; probe is useless *)
  mutable cmp_last : int64 * int64;  (** last observed operand values *)
}

type check_kind = Div_by_zero | Load_in_bounds

type check_state = {
  chk_ins : Ir.Ins.ins;  (** the guarded instruction in the pristine IR *)
  chk_kind : check_kind;
  mutable chk_trips : int;  (** times the check executed (profiling) *)
}

(** What a mutant does to its site when armed (mutation testing,
    Mull-style: every mutant is compiled against the same pristine IR and
    switched by probe toggling instead of recompilation from source). *)
type mut_op =
  | Mut_binop of Ir.Ins.binop  (** arithmetic-operator swap: replacement op *)
  | Mut_icmp of Ir.Ins.icmp  (** relational-operator swap: replacement predicate *)
  | Mut_const of int * int64  (** perturb the [n]th operand (a constant) by delta *)
  | Mut_del  (** delete the instruction (statement deletion; stores only) *)
  | Mut_brswap  (** swap the block terminator's [Cbr] targets *)

type mut_state = {
  mut_op : mut_op;
  mut_ins : Ir.Ins.ins option;
      (** the mutated instruction in the pristine IR ([None] for
          terminator mutants — the site is the block instead) *)
  mut_block : string;  (** IR block label of the site (informational for
                           instruction mutants, the site for [Mut_brswap]) *)
  mut_desc : string;  (** e.g. ["aor add->sub"] — stable across runs *)
}

type payload =
  | Cov of cov_state
  | Cmp of cmp_state
  | Check of check_state
  | Mutant of mut_state

type t = {
  pid : int;  (** unique id, assigned by the manager *)
  target : string;  (** the symbol this probe patches (getPatchTarget) *)
  mutable enabled : bool;
  payload : payload;
}

(** One-line human-readable description (for logs and debugging). *)
val describe : t -> string
