(** PatchManager: dynamic adding, deleting and changing of probes (paper
    Section 4). The manager tracks which probes changed since the last
    recompilation; Odin's scheduler reads that dirty set to bound the
    recompilation scope (Algorithm 2, lines 2-6).

    Dirty-state queries ({!changed_probes}, {!changed_targets}) and the
    by-target lookup ({!probes_on}) are O(changed) / O(probes on that
    symbol): the manager maintains persistent indexes instead of
    filtering the full probe list, so the incremental scheduler never
    pays O(program) to find what changed. *)

type t

val create : unit -> t

(** Register a new probe against [target]; starts dirty, and enabled
    unless [~enabled:false] (mutants register disarmed: the initial
    build must produce the pristine image). *)
val add : t -> ?enabled:bool -> target:string -> Probe.payload -> Probe.t

val get : t -> int -> Probe.t option

(** @raise Invalid_argument if no probe has this id. *)
val get_exn : t -> int -> Probe.t

(** Remove a probe. Its target symbol stays dirty so the next
    recompilation regenerates the symbol without the probe's code.
    Removing an already-removed probe is a no-op (the target stays
    dirty). *)
val remove : t -> Probe.t -> unit

(** Enable or disable a probe (marks it changed when the state flips). *)
val set_enabled : t -> Probe.t -> bool -> unit

(** Batch N probe toggles into one dirty-set update: the next rebuild
    drains the batch with a single [changed_targets] pass and a single
    schedule (K toggles visit O(K) fragments, not K separate passes). *)
val toggle_many : t -> (Probe.t * bool) list -> unit

(** Mark a probe's logic as modified (e.g. its payload was retargeted). *)
val touch : t -> Probe.t -> unit

(** Cumulative instrumentation-change count for a probe id:
    enable/disable flips plus its removal. Survives the probe's removal
    so cost attribution can report pruned probes. *)
val toggle_count : t -> int -> int

val iter : (Probe.t -> unit) -> t -> unit

(** All live probes in registration order. *)
val to_list : t -> Probe.t list

val count : t -> int

(** Live probes registered against a symbol, probe ids ascending (the
    relative order {!to_list} would give). Served from the persistent
    by-target index — O(probes on that symbol). *)
val probes_on : t -> string -> Probe.t list

(** Probes changed since the last successful rebuild, ids ascending.
    O(changed), not O(probes). *)
val changed_probes : t -> Probe.t list

(** Symbols that must be recompiled: targets of changed probes plus
    targets of removed probes, sorted. *)
val changed_targets : t -> string list

val has_changes : t -> bool

(** Called by the engine after a successful rebuild. *)
val clear_changes : t -> unit
