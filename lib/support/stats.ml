(** Small statistics kit for the evaluation harness: the paper reports
    medians, means, geometric means and worst cases over per-program
    measurements (Figures 8-12). *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (logsum /. float_of_int (List.length xs))

(** Percentile with linear interpolation; [p] in [0,100]. *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
    end

let median xs = percentile 50. xs
let p90 xs = percentile 90. xs
let p99 xs = percentile 99. xs
let min_l xs = List.fold_left min infinity xs
let max_l xs = List.fold_left max neg_infinity xs

type summary = {
  n : int;
  mean : float;
  median : float;
  p25 : float;
  p75 : float;
  min : float;
  max : float;
}

let summarize xs =
  {
    n = List.length xs;
    mean = mean xs;
    median = median xs;
    p25 = percentile 25. xs;
    p75 = percentile 75. xs;
    min = min_l xs;
    max = max_l xs;
  }
