(** Statistics for the evaluation harness (medians, means, percentiles
    over per-program measurements — Figures 8-12). All functions return
    [nan] on empty input. *)

val mean : float list -> float
val geomean : float list -> float

(** Percentile with linear interpolation; [p] in [0, 100]. *)
val percentile : float -> float list -> float

val median : float list -> float

(** Tail-latency convenience wrappers: [percentile 90.] / [percentile 99.]. *)
val p90 : float list -> float

val p99 : float list -> float
val min_l : float list -> float
val max_l : float list -> float

type summary = {
  n : int;
  mean : float;
  median : float;
  p25 : float;
  p75 : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
