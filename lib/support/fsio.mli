(** Crash-safe file publication (tmp + atomic rename, the {!Objstore}
    pattern) for exporters: a kill mid-write never leaves a truncated
    file at the destination path. *)

(** Stage into a unique same-directory temp file, then [Sys.rename]
    over [path]. Raises [Sys_error] on I/O failure, after removing the
    temp file. *)
val write_atomic : string -> string -> unit

(** [write_atomic_with path f] renders into a fresh buffer via [f] and
    publishes it atomically. *)
val write_atomic_with : string -> (Buffer.t -> unit) -> unit

(** Whole-file read (binary). Raises [Sys_error] if unreadable. *)
val read_file : string -> string

(** [mkdir -p]. Existing directories are fine; creation races are
    ignored. *)
val mkdir_p : string -> unit
