type 'a entry = { value : 'a; mutable tick : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable evicted : int;
}

let create cap = { cap = max 1 cap; tbl = Hashtbl.create 64; clock = 0; evicted = 0 }
let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evicted

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some e ->
      touch t e;
      Some e.value

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, tick) when tick <= e.tick -> ()
      | _ -> victim := Some (k, e.tick))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evicted <- t.evicted + 1

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some _ -> Hashtbl.remove t.tbl key
  | None -> ());
  if Hashtbl.length t.tbl >= t.cap then evict_oldest t;
  let e = { value; tick = 0 } in
  touch t e;
  Hashtbl.replace t.tbl key e

let clear t =
  Hashtbl.reset t.tbl;
  t.clock <- 0
