(** A fixed-size domain pool for embarrassingly parallel compile jobs.

    The pool is deliberately dependency-free (no domainslib): a plain
    Mutex/Condition job queue drained by [size - 1] worker domains plus
    the calling domain itself. Pool size 1 spawns no domains at all and
    runs jobs inline — byte-for-byte the serial path. *)

type t

(** The inline, no-domain pool. [map serial f xs] == [List.map f xs]. *)
val serial : t

(** [create ?size ()] spawns a pool. [size] defaults to [default_size ()]
    and is clamped to at least 1. *)
val create : ?size:int -> unit -> t

(** Number of concurrent executors (workers + the calling domain). *)
val size : t -> int

(** Pool size implied by the environment: [ODIN_JOBS] if set to a
    positive integer, else [Domain.recommended_domain_count ()] capped
    at 8 (fragment compiles are small; more domains just burn memory). *)
val default_size : unit -> int

(** A lazily created process-wide pool of [default_size ()] executors.
    Shared by every session that does not pass an explicit pool. *)
val default : unit -> t

(** [map t f xs] applies [f] to every element, possibly concurrently,
    and returns results in input order. If any job raises, the first
    exception in input order is re-raised in the caller (with its
    backtrace) after all jobs of the batch have finished. Calls from
    inside a pool worker degrade to serial [List.map] (no deadlock). *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Ask the workers to exit and join them. The pool must not be used
    afterwards. No-op on [serial] and on already-shut-down pools. *)
val shutdown : t -> unit
