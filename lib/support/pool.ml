(** A fixed-size domain pool with an exception-safe fork/join [map].

    Failure contract (the property the rebuild pipeline leans on): a job
    that raises never abandons its siblings or poisons the queue. Each
    job captures its own result or exception; {!map} drains the queue
    alongside the workers and only re-raises — the first exception in
    input order, with its original backtrace — *after every job of the
    batch has completed*. A failed batch therefore cannot leave sibling
    jobs running against state the caller has already torn down, and the
    pool remains fully serviceable for subsequent batches. *)

type t = {
  psize : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a job is queued *)
  done_ : Condition.t;  (* signalled when some batch completes *)
  mutable jobs : (unit -> unit) list;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Set inside worker domains so a nested [map] (e.g. a job that itself
   builds a session) cannot block on the queue it is supposed to drain. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let serial =
  {
    psize = 1;
    lock = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    jobs = [];
    stop = false;
    workers = [];
  }

let size t = t.psize

let default_size () =
  match Sys.getenv_opt "ODIN_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 64
      | _ -> 1)
  | None -> min (Domain.recommended_domain_count ()) 8

(* Pop a job or block until one arrives / the pool stops. Caller holds
   the lock; it is held again on return. *)
let rec next_job t =
  match t.jobs with
  | j :: rest ->
      t.jobs <- rest;
      Some j
  | [] ->
      if t.stop then None
      else (
        Condition.wait t.work t.lock;
        next_job t)

let worker_loop t () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock t.lock;
    match next_job t with
    | None -> Mutex.unlock t.lock
    | Some job ->
        Mutex.unlock t.lock;
        (* Jobs queued by [map] never raise: each stores its own result
           or exception and does its own batch accounting. *)
        job ();
        loop ()
  in
  loop ()

let create ?size () =
  let psize =
    match size with Some n -> max 1 n | None -> default_size ()
  in
  let t = { serial with psize; lock = Mutex.create (); work = Condition.create (); done_ = Condition.create () } in
  if psize > 1 then
    t.workers <- List.init (psize - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      p

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.psize <= 1 || Domain.DLS.get in_worker -> List.map f xs
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      (* Per-batch completion counter: this map call joins exactly its
         own jobs, even when other batches share the pool concurrently. *)
      let remaining = ref n in
      let job i () =
        let r =
          try Stdlib.Ok (f arr.(i))
          with e -> Stdlib.Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.lock;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast t.done_;
        Mutex.unlock t.lock
      in
      Mutex.lock t.lock;
      (* Queue in order; workers take from the head, the caller drains
         alongside them (jobs popped here may belong to another batch —
         running them is harmless and avoids idle domains). *)
      t.jobs <- t.jobs @ List.init n (fun i -> job i);
      Condition.broadcast t.work;
      let rec drain () =
        if !remaining > 0 then
          match t.jobs with
          | j :: rest ->
              t.jobs <- rest;
              Mutex.unlock t.lock;
              j ();
              Mutex.lock t.lock;
              drain ()
          | [] ->
              Condition.wait t.done_ t.lock;
              drain ()
      in
      drain ();
      Mutex.unlock t.lock;
      (* Join barrier passed: every job of this batch has completed, so
         re-raising here cannot abandon a sibling mid-flight. *)
      Array.to_list
        (Array.map
           (function
             | Some (Stdlib.Ok v) -> v
             | Some (Stdlib.Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false)
           results)

let shutdown t =
  if t.psize > 1 then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
