(** Crash-safe file publication: the tmp + atomic-rename pattern
    {!Objstore} uses, factored out for every exporter that writes
    user-visible artifacts (CSV metrics, Chrome traces, benchmark
    snapshots, campaign journals). A killed process leaves at worst a
    stale [*.tmp.*] sibling, never a truncated file at the final path —
    [Sys.rename] within one directory is atomic on POSIX. *)

let seq = Atomic.make 0

(** Temp-file sibling of [path], unique per (process, call). *)
let tmp_name path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add seq 1)

(** Write [contents] to [path] atomically: stage into a same-directory
    temp file, fsync nothing (the rename's atomicity is the contract,
    matching {!Objstore}), then rename over [path]. On any error the
    temp file is removed and the exception re-raised — the destination
    is either the old complete file or the new complete file. *)
let write_atomic path contents =
  let tmp = tmp_name path in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(** [write_atomic] for a rendering function: avoids holding the whole
    document when the caller already has a [Buffer]-based renderer. *)
let write_atomic_with path f =
  let b = Buffer.create 4096 in
  f b;
  write_atomic path (Buffer.contents b)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end
