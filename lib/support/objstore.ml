(** Crash-safe on-disk content-addressed blob store — the persistent
    layer behind Session's in-memory object cache ([odinc fuzz
    --cache-dir]), so a restarted fuzzing campaign starts warm.

    Layout under the root directory:

    {v
    root/format          "ODINSTORE <version>\n" — mismatch wipes objects
    root/objects/ab/<hex>  entries, sharded by the first two hex chars
    root/quarantine/     corrupt entries moved aside for post-mortem
    root/tmp/            write staging (temp file + atomic rename)
    v}

    Every entry is [header ^ payload] where the header records a magic
    string, the store version, the payload's digest and its length. A
    read that finds a missing field, a short payload, or a digest
    mismatch — a torn or corrupted entry — is treated as a miss: the
    entry is moved to [quarantine/] (never silently reused, kept for
    inspection) and the caller recompiles. Writes go to [tmp/] and are
    published with [Sys.rename], so a crash mid-write leaves at worst a
    stale temp file, never a half-visible entry.

    Keys are arbitrary strings (Session uses its content digest); they
    are re-hashed to hex for the on-disk name. Reads and writes are safe
    from concurrent domains: counters are mutex-guarded and the
    filesystem operations are per-entry atomic.

    Multi-process safety: one store directory may be shared by several
    worker {e processes} (the process farm). Every handle keeps
    [root/lock] open and takes an advisory [lockf] lock on it — shared
    for per-entry mutations (put, quarantine: their atomic renames
    already compose), exclusive for structural passes (format
    migration, {!gc}) that must not interleave with another process's
    writes. Advisory locks are per-process, so this complements (does
    not replace) the per-handle mutex. Lock failures degrade to
    unlocked best-effort operation — the store never becomes a
    correctness dependency.

    Fault sites: ["store.read"] (a raised fault degrades to a miss),
    ["store.write"] (a raised fault skips persistence — the store is an
    optimization, never a correctness dependency), and the torn-write
    kind at ["store.write"] makes the store deliberately publish a
    truncated entry at the final path, simulating a crash on a
    non-atomic filesystem — the recovery path above is then testable by
    construction. *)

let magic = "ODINSTORE"

type stats = {
  st_hits : int;
  st_misses : int;  (** includes corrupt entries *)
  st_writes : int;
  st_write_errors : int;  (** failed/skipped best-effort writes *)
  st_quarantined : int;
  st_gc_runs : int;
  st_gc_evicted : int;  (** entries evicted by {!gc} over this handle's life *)
}

type t = {
  root : string;
  version : int;
  lock : Mutex.t;
  lockf_fd : Unix.file_descr option;  (** [root/lock], advisory cross-process lock *)
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable write_errors : int;
  mutable quarantined : int;
  mutable gc_runs : int;
  mutable gc_evicted : int;
  mutable tmp_seq : int;
}

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
    end
    else try Sys.remove path with Sys_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let format_file root = Filename.concat root "format"
let lock_file root = Filename.concat root "lock"
let objects_dir root = Filename.concat root "objects"
let quarantine_root t = Filename.concat t.root "quarantine"
let tmp_dir root = Filename.concat root "tmp"

(* ------------------------------------------------------------------ *)
(* Advisory cross-process locking                                      *)
(* ------------------------------------------------------------------ *)

(* Best-effort: a platform where lockf is unsupported degrades to the
   old unlocked behavior rather than failing the store. *)
let open_lock_fd root =
  try Some (Unix.openfile (lock_file root) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
  with Unix.Unix_error _ | Sys_error _ -> None

(* F_LOCK = exclusive (structural passes), F_RLOCK = shared
   (per-entry mutations, whose atomic renames already compose). *)
let with_fd_lock fd_opt cmd f =
  match fd_opt with
  | None -> f ()
  | Some fd ->
    let locked = try Unix.lockf fd cmd 0; true with Unix.Unix_error _ -> false in
    Fun.protect
      ~finally:(fun () ->
        if locked then try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
      f

let with_store_lock t cmd f = with_fd_lock t.lockf_fd cmd f

(* ------------------------------------------------------------------ *)
(* Open                                                                *)
(* ------------------------------------------------------------------ *)

(** Open (creating or migrating as needed) the store rooted at [dir].
    A version mismatch in [root/format] — a format bump — invalidates
    cleanly: all objects are dropped and the stamp rewritten. *)
let open_store ?(version = 1) dir =
  mkdir_p dir;
  let lockf_fd = open_lock_fd dir in
  (* Migration is structural: wipe + restamp must not race another
     process's writes, so it runs under the exclusive lock. *)
  with_fd_lock lockf_fd Unix.F_LOCK (fun () ->
      let stamp = Printf.sprintf "%s %d\n" magic version in
      let current = try Some (read_file (format_file dir)) with Sys_error _ -> None in
      if current <> Some stamp then begin
        rm_rf (objects_dir dir);
        rm_rf (tmp_dir dir);
        (* publish the new stamp atomically too *)
        mkdir_p (tmp_dir dir);
        let tmp = Filename.concat (tmp_dir dir) "format.tmp" in
        write_file tmp stamp;
        Sys.rename tmp (format_file dir)
      end;
      mkdir_p (objects_dir dir);
      mkdir_p (tmp_dir dir);
      mkdir_p (Filename.concat dir "quarantine"));
  {
    root = dir;
    version;
    lock = Mutex.create ();
    lockf_fd;
    hits = 0;
    misses = 0;
    writes = 0;
    write_errors = 0;
    quarantined = 0;
    gc_runs = 0;
    gc_evicted = 0;
    tmp_seq = 0;
  }

(* ------------------------------------------------------------------ *)
(* Entry naming and format                                             *)
(* ------------------------------------------------------------------ *)

let entry_name key = Digest.to_hex (Digest.string key)

(** On-disk path of [key]'s entry (exposed so tests and operators can
    inspect or deliberately corrupt a specific entry). *)
let entry_path t key =
  let name = entry_name key in
  Filename.concat (Filename.concat (objects_dir t.root) (String.sub name 0 2)) name

let header t payload =
  Printf.sprintf "%s %d %s %d\n" magic t.version
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

type read_result = Hit of string | Absent | Corrupt of string

let read_entry t path =
  if not (Sys.file_exists path) then Absent
  else
    match read_file path with
    | exception Sys_error m -> Corrupt m
    | raw -> (
      match String.index_opt raw '\n' with
      | None -> Corrupt "no header"
      | Some nl -> (
        let header = String.sub raw 0 nl in
        let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
        match String.split_on_char ' ' header with
        | [ m; v; digest_hex; len_s ] -> (
          if m <> magic then Corrupt "bad magic"
          else if int_of_string_opt v <> Some t.version then Corrupt "bad version"
          else
            match int_of_string_opt len_s with
            | None -> Corrupt "bad length"
            | Some len when len <> String.length payload ->
              Corrupt
                (Printf.sprintf "torn entry: %d of %d payload bytes"
                   (String.length payload) len)
            | Some _ ->
              if Digest.to_hex (Digest.string payload) <> digest_hex then
                Corrupt "digest mismatch"
              else Hit payload)
        | _ -> Corrupt "malformed header"))

(* Move a corrupt entry aside; it is never served again and survives for
   post-mortem. Best-effort: if even the move fails, delete it. *)
let quarantine t path reason =
  let dest =
    Filename.concat (quarantine_root t)
      (Printf.sprintf "%s.%d" (Filename.basename path)
         (let n = t.quarantined in
          n))
  in
  with_store_lock t Unix.F_RLOCK (fun () ->
      try Sys.rename path dest
      with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  ignore reason

(* ------------------------------------------------------------------ *)
(* Get / put                                                           *)
(* ------------------------------------------------------------------ *)

(** Look up [key]. A corrupt or torn entry is detected (checksum,
    length, version), quarantined, and reported as a miss; an injected
    ["store.read"] fault likewise degrades to a miss. *)
let get t key =
  let faulted =
    try
      Fault.hit "store.read";
      false
    with Fault.Injected _ | Fault.Transient_fault _ -> true
  in
  if faulted then begin
    Mutex.lock t.lock;
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    None
  end
  else
    let path = entry_path t key in
    match read_entry t path with
    | Hit payload ->
      Mutex.lock t.lock;
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Some payload
    | Absent ->
      Mutex.lock t.lock;
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      None
    | Corrupt reason ->
      Mutex.lock t.lock;
      t.misses <- t.misses + 1;
      t.quarantined <- t.quarantined + 1;
      Mutex.unlock t.lock;
      quarantine t path reason;
      None

(** Persist [data] under [key]: temp file + atomic rename. Best-effort —
    any failure (including an injected ["store.write"] fault) is counted
    and swallowed; persistence is an optimization, never a correctness
    dependency. A torn-write fault deliberately publishes a truncated
    entry at the final path (crash simulation); the next {!get} must
    quarantine it. *)
let put t key data =
  try
    Fault.hit "store.write";
    let path = entry_path t key in
    mkdir_p (Filename.dirname path);
    if Fault.torn "store.write" then begin
      (* simulated crash mid-write on a non-atomic filesystem: final
         path exists, payload truncated *)
      write_file path (header t data ^ String.sub data 0 (String.length data / 2));
      Mutex.lock t.lock;
      t.writes <- t.writes + 1;
      Mutex.unlock t.lock
    end
    else begin
      Mutex.lock t.lock;
      t.tmp_seq <- t.tmp_seq + 1;
      let seq = t.tmp_seq in
      Mutex.unlock t.lock;
      let tmp =
        Filename.concat (tmp_dir t.root)
          (Printf.sprintf "%s.%d.%d.tmp" (entry_name key) (Unix.getpid ()) seq)
      in
      with_store_lock t Unix.F_RLOCK (fun () ->
          write_file tmp (header t data ^ data);
          Sys.rename tmp path);
      Mutex.lock t.lock;
      t.writes <- t.writes + 1;
      Mutex.unlock t.lock
    end
  with
  | Fault.Timed_out _ as e -> raise e
  | _ ->
    Mutex.lock t.lock;
    t.write_errors <- t.write_errors + 1;
    Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      st_hits = t.hits;
      st_misses = t.misses;
      st_writes = t.writes;
      st_write_errors = t.write_errors;
      st_quarantined = t.quarantined;
      st_gc_runs = t.gc_runs;
      st_gc_evicted = t.gc_evicted;
    }
  in
  Mutex.unlock t.lock;
  s

let root t = t.root

(** Number of entries currently on disk. *)
let length t =
  let objects = objects_dir t.root in
  if not (Sys.file_exists objects) then 0
  else
    Array.fold_left
      (fun acc shard ->
        let dir = Filename.concat objects shard in
        if Sys.is_directory dir then acc + Array.length (Sys.readdir dir) else acc)
      0 (Sys.readdir objects)

(** Entries sitting in quarantine (count of files). *)
let quarantine_length t =
  let dir = quarantine_root t in
  if Sys.file_exists dir then Array.length (Sys.readdir dir) else 0

(* ------------------------------------------------------------------ *)
(* Garbage collection                                                  *)
(* ------------------------------------------------------------------ *)

type gc_stats = {
  gc_scanned : int;
  gc_evicted : int;
  gc_freed_bytes : int;
  gc_live : int;
  gc_live_bytes : int;
}

(* All entries as (path, bytes, mtime), in a deterministic order:
   coldest (oldest mtime) first, path as tie-break. *)
let scan_entries t =
  let objects = objects_dir t.root in
  let acc = ref [] in
  if Sys.file_exists objects then
    Array.iter
      (fun shard ->
        let dir = Filename.concat objects shard in
        if Sys.is_directory dir then
          Array.iter
            (fun name ->
              let path = Filename.concat dir name in
              match Unix.stat path with
              | exception Unix.Unix_error _ -> ()
              | st ->
                if st.Unix.st_kind = Unix.S_REG then
                  acc := (path, st.Unix.st_size, st.Unix.st_mtime) :: !acc)
            (Sys.readdir dir))
      (Sys.readdir objects);
  List.sort
    (fun (pa, _, ma) (pb, _, mb) ->
      match compare ma mb with 0 -> String.compare pa pb | c -> c)
    !acc

(** Size/age-bounded eviction of cold entries. Entries older than
    [max_age] seconds (by mtime, against [now]) are always evicted;
    after that, the coldest survivors are evicted until the store fits
    in [max_bytes]. Omitting a bound disables it. [?now] exists so
    tests can pin the clock. Eviction order is deterministic: oldest
    mtime first, path as tie-break. Best-effort like every store
    operation — an entry that vanishes mid-scan is simply skipped. *)
let gc ?max_bytes ?max_age ?now t =
  with_store_lock t Unix.F_LOCK @@ fun () ->
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let entries = scan_entries t in
  let scanned = List.length entries in
  let expired, fresh =
    match max_age with
    | None -> ([], entries)
    | Some age -> List.partition (fun (_, _, mtime) -> now -. mtime > age) entries
  in
  let total_fresh = List.fold_left (fun a (_, sz, _) -> a + sz) 0 fresh in
  let over_budget =
    match max_bytes with
    | None -> []
    | Some budget ->
      (* [fresh] is coldest-first; evict from the front until the
         remainder fits *)
      let rec take acc total = function
        | [] -> List.rev acc
        | ((_, sz, _) as e) :: rest ->
          if total > budget then take (e :: acc) (total - sz) rest else List.rev acc
      in
      take [] total_fresh fresh
  in
  let victims = expired @ over_budget in
  let evicted = ref 0 and freed = ref 0 in
  List.iter
    (fun (path, sz, _) ->
      match Sys.remove path with
      | () ->
        incr evicted;
        freed := !freed + sz
      | exception Sys_error _ -> ())
    victims;
  Mutex.lock t.lock;
  t.gc_runs <- t.gc_runs + 1;
  t.gc_evicted <- t.gc_evicted + !evicted;
  Mutex.unlock t.lock;
  {
    gc_scanned = scanned;
    gc_evicted = !evicted;
    gc_freed_bytes = !freed;
    gc_live = scanned - !evicted;
    gc_live_bytes =
      List.fold_left (fun a (_, sz, _) -> a + sz) 0 entries - !freed;
  }
