(** Deterministic, seeded fault injection for the rebuild pipeline.

    Every failure-prone stage of the compile path declares a *fault
    site* — a stable string like ["opt.pipeline"], ["codegen.emit"],
    ["link"], ["link.patch"] (the incremental linker's in-place patch
    path; its torn kind corrupts a patched slot, which the linker's
    verify-after-patch pass must catch and turn into a clean link
    failure), ["cache.get"], ["store.read"], ["store.write"],
    ["session.materialize"], ["vm.step"] (per basic-block entry in the
    VM, for killing a guest execution mid-flight), ["farm.sync"]
    (the fuzzing farm's barrier rendezvous, for killing a worker
    mid-round), ["farm.heartbeat"] (the process supervisor's liveness
    check — an injected fault is treated as a missed deadline and the
    worker is SIGKILLed), ["wire.send"] (the farm wire protocol's
    frame writes; its torn kind truncates a frame mid-write) and
    ["farm.checkpoint"] (the supervisor's barrier checkpoint publish;
    raise skips the write, torn leaves a truncated checkpoint at the
    final path) — and calls {!hit} on entry. The [kill] kind SIGKILLs
    the current process on the spot: in a process farm that is a real,
    preemptively-detected worker crash. With no plan installed a hit is a couple of
    domain-local reads; with a plan installed, the matching rules decide
    (reproducibly, from the plan seed and the per-rule hit count)
    whether to raise a permanent {!Injected} fault, a retryable
    {!Transient_fault}, advance the virtual clock ({!Delay}, which can
    trip the cooperative per-job watchdog), or — for sites that opt in
    via {!torn} — corrupt their own output mid-write.

    Plans come from [ODIN_FAULTS] / [odinc --fault-plan]; the syntax is

    {[ seed=42;opt.pipeline:transient:nth=1;link:raise:p=0.25 ]}

    i.e. [;]-separated clauses [site:kind[:trigger]] with
    [kind ∈ raise | transient | torn | delay=SECS] and
    [trigger ∈ always (default) | nth=N | p=FLOAT]. Probability
    decisions hash [(seed, site, hit-index)], so a plan replays
    identically for a fixed hit order and the *number* of fired faults
    is identical for any pool size.

    The watchdog: {!with_deadline} arms a per-domain budget (used by
    Session for its per-fragment [~job_timeout]); each subsequent {!hit}
    checks elapsed wall time plus accumulated virtual delay and raises
    {!Timed_out} when the budget is exhausted. It is cooperative — it
    fires at instrumentation points, not preemptively — which is exactly
    what a deterministic test harness wants.

    Recovery paths (e.g. the pristine-object fallback that degrades a
    failing fragment) run under {!with_suppressed}, which disables both
    injection and the watchdog for the current domain: the last-resort
    path must not be sabotaged by the fault it is recovering from. *)

exception Injected of string  (** permanent fault at a site *)

exception Transient_fault of string  (** retryable fault at a site *)

exception Timed_out of string  (** per-job watchdog expired at a site *)

type kind =
  | Raise
  | Transient
  | Delay of float
  | Torn
  | Kill  (** SIGKILL the current process — a real, non-catchable crash *)

type trigger = Always | Nth of int  (** fire on the Nth hit only *) | Prob of float

type rule = {
  r_site : string;
  r_kind : kind;
  r_trigger : trigger;
  mutable r_hits : int;  (** times a matching site consulted this rule *)
  mutable r_fired : int;
}

type plan = { seed : int; rules : rule list }

(* ------------------------------------------------------------------ *)
(* Global plan + per-domain state                                      *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()
let active : plan option ref = ref None
let backoff_acc = ref 0.  (* total virtual backoff slept, for stats *)

(* Per-domain suppression flag: recovery paths are exempt. *)
let suppressed : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Per-domain cooperative watchdog. *)
type watch = { w_deadline : float; w_start : float; mutable w_virtual : float }

let watch_key : watch option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install plan =
  Mutex.lock lock;
  active := Some plan;
  Mutex.unlock lock

let clear () =
  Mutex.lock lock;
  active := None;
  Mutex.unlock lock

(** Install [plan], run [f], always uninstall. The canonical way tests
    scope a fault plan. *)
let with_plan plan f =
  install plan;
  Fun.protect ~finally:clear f

let installed () = !active

(** Run [f] with injection and the watchdog disabled on this domain. *)
let with_suppressed f =
  let prev = Domain.DLS.get suppressed in
  Domain.DLS.set suppressed true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set suppressed prev) f

(* ------------------------------------------------------------------ *)
(* Decision engine                                                     *)
(* ------------------------------------------------------------------ *)

(* Deterministic uniform float in [0,1) from (seed, site, hit index). *)
let hash_unit seed site n =
  let h = Hashtbl.hash (seed, site, n) in
  float_of_int (h land 0xFFFFFF) /. float_of_int 0x1000000

let decide seed rule =
  rule.r_hits <- rule.r_hits + 1;
  let fire =
    match rule.r_trigger with
    | Always -> true
    | Nth n -> rule.r_hits = n
    | Prob p -> hash_unit seed rule.r_site rule.r_hits < p
  in
  if fire then rule.r_fired <- rule.r_fired + 1;
  fire

(* First firing rule for [site]; [torn_only] selects between the
   raise/transient/delay rules consulted by [hit] and the torn-write
   rules consulted by [torn] — the two never consume each other's hit
   counters. *)
let fires ~torn_only site =
  match !active with
  | None -> None
  | Some plan ->
    Mutex.lock lock;
    let result =
      List.find_map
        (fun r ->
          if
            String.equal r.r_site site
            && (match r.r_kind with Torn -> torn_only | _ -> not torn_only)
            && decide plan.seed r
          then Some r.r_kind
          else None)
        plan.rules
    in
    Mutex.unlock lock;
    result

(** Advance this domain's virtual clock (a bounded-retry backoff "sleep"
    that never blocks). Counts toward the watchdog budget. *)
let virtual_sleep dt =
  Mutex.lock lock;
  backoff_acc := !backoff_acc +. dt;
  Mutex.unlock lock;
  match Domain.DLS.get watch_key with
  | Some w -> w.w_virtual <- w.w_virtual +. dt
  | None -> ()

(** Total virtual seconds slept in backoff since process start. *)
let backoff_total () =
  Mutex.lock lock;
  let v = !backoff_acc in
  Mutex.unlock lock;
  v

let check_deadline site =
  match Domain.DLS.get watch_key with
  | None -> ()
  | Some w ->
    let elapsed = Unix.gettimeofday () -. w.w_start +. w.w_virtual in
    if elapsed > w.w_deadline then raise (Timed_out site)

(** Arm the cooperative watchdog for the duration of [f] on this domain
    ([None] = unlimited). Subsequent {!hit}s raise {!Timed_out} once
    real time plus virtual delay exceeds [timeout]. *)
let with_deadline timeout f =
  match timeout with
  | None -> f ()
  | Some d ->
    let prev = Domain.DLS.get watch_key in
    Domain.DLS.set watch_key
      (Some { w_deadline = d; w_start = Unix.gettimeofday (); w_virtual = 0. });
    Fun.protect ~finally:(fun () -> Domain.DLS.set watch_key prev) f

(** Declare that execution reached fault site [site]. Raises {!Injected}
    / {!Transient_fault} / {!Timed_out} according to the installed plan
    and the armed watchdog; no-op (beyond the watchdog check) otherwise. *)
let hit site =
  if not (Domain.DLS.get suppressed) then begin
    check_deadline site;
    match fires ~torn_only:false site with
    | Some Raise -> raise (Injected site)
    | Some Transient -> raise (Transient_fault site)
    | Some (Delay d) ->
      virtual_sleep d;
      check_deadline site
    | Some Kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | Some Torn | None -> ()
  end

(** [torn site] is [true] when a torn-write fault fires at [site]; the
    site is then expected to corrupt its own output (the object store
    writes a truncated entry to the final path, simulating a crash on a
    non-atomic filesystem). *)
let torn site =
  (not (Domain.DLS.get suppressed)) && fires ~torn_only:true site = Some Torn

(* ------------------------------------------------------------------ *)
(* Plan parsing                                                        *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function
  | Raise -> "raise"
  | Transient -> "transient"
  | Torn -> "torn"
  | Kill -> "kill"
  | Delay d -> Printf.sprintf "delay=%g" d

let trigger_to_string = function
  | Always -> "always"
  | Nth n -> Printf.sprintf "nth=%d" n
  | Prob p -> Printf.sprintf "p=%g" p

let to_string plan =
  String.concat ";"
    (Printf.sprintf "seed=%d" plan.seed
    :: List.map
         (fun r ->
           Printf.sprintf "%s:%s:%s" r.r_site (kind_to_string r.r_kind)
             (trigger_to_string r.r_trigger))
         plan.rules)

let rule ?(trigger = Always) site kind =
  { r_site = site; r_kind = kind; r_trigger = trigger; r_hits = 0; r_fired = 0 }

let plan ?(seed = 0) rules = { seed; rules }

(** Parse the [ODIN_FAULTS] / [--fault-plan] syntax (see module doc). *)
let parse_plan s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let clauses =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go seed rules = function
    | [] -> Ok { seed; rules = List.rev rules }
    | clause :: rest -> (
      match String.index_opt clause '=' with
      | Some _ when String.length clause > 5 && String.sub clause 0 5 = "seed=" -> (
        match int_of_string_opt (String.sub clause 5 (String.length clause - 5)) with
        | Some n -> go n rules rest
        | None -> err "fault plan: bad seed in %S" clause)
      | _ -> (
        match String.split_on_char ':' clause with
        | site :: kind_s :: trigger_s ->
          let kind =
            match kind_s with
            | "raise" -> Ok Raise
            | "transient" -> Ok Transient
            | "torn" -> Ok Torn
            | "kill" -> Ok Kill
            | _ when String.length kind_s > 6 && String.sub kind_s 0 6 = "delay=" -> (
              match
                float_of_string_opt (String.sub kind_s 6 (String.length kind_s - 6))
              with
              | Some d when d >= 0. -> Ok (Delay d)
              | _ -> Error (Printf.sprintf "fault plan: bad delay in %S" clause)
            )
            | _ -> Error (Printf.sprintf "fault plan: unknown kind %S" kind_s)
          in
          let trigger =
            match trigger_s with
            | [] | [ "always" ] -> Ok Always
            | [ t ] when String.length t > 4 && String.sub t 0 4 = "nth=" -> (
              match int_of_string_opt (String.sub t 4 (String.length t - 4)) with
              | Some n when n >= 1 -> Ok (Nth n)
              | _ -> Error (Printf.sprintf "fault plan: bad nth in %S" clause))
            | [ t ] when String.length t > 2 && String.sub t 0 2 = "p=" -> (
              match float_of_string_opt (String.sub t 2 (String.length t - 2)) with
              | Some p when p >= 0. && p <= 1. -> Ok (Prob p)
              | _ -> Error (Printf.sprintf "fault plan: bad probability in %S" clause))
            | _ -> Error (Printf.sprintf "fault plan: bad trigger in %S" clause)
          in
          (match (kind, trigger) with
          | Ok k, Ok tr -> go seed (rule ~trigger:tr site k :: rules) rest
          | Error m, _ | _, Error m -> Error m)
        | _ -> err "fault plan: cannot parse clause %S" clause))
  in
  go 0 [] clauses

(** Install the plan named by [ODIN_FAULTS], if set. Returns the parse
    error, if any, so the caller can report it. *)
let init_from_env () =
  match Sys.getenv_opt "ODIN_FAULTS" with
  | None | Some "" -> Ok false
  | Some s -> (
    match parse_plan s with
    | Ok p ->
      install p;
      Ok true
    | Error m -> Error m)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

(** (site, kind, hits, fired) for every rule of the installed plan. *)
let stats () =
  Mutex.lock lock;
  let s =
    match !active with
    | None -> []
    | Some plan ->
      List.map (fun r -> (r.r_site, r.r_kind, r.r_hits, r.r_fired)) plan.rules
  in
  Mutex.unlock lock;
  s

(** Total faults fired by the installed plan so far. *)
let total_fired () =
  List.fold_left (fun acc (_, _, _, fired) -> acc + fired) 0 (stats ())
