(** A small string-keyed LRU map.

    Recency is tracked with a monotonically increasing tick per access;
    eviction scans for the minimum tick, which is O(n) but fine for the
    few-hundred-entry object caches this backs. Not thread-safe; callers
    serialize access (the session guards it with a mutex). *)

type 'a t

(** [create capacity] — capacity is clamped to at least 1. *)
val create : int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** Look up [key]; a hit refreshes its recency. *)
val find : 'a t -> string -> 'a option

(** Insert or overwrite [key]; evicts the least-recently-used entry
    when over capacity. *)
val add : 'a t -> string -> 'a -> unit

(** Total number of evictions since [create]. *)
val evictions : 'a t -> int

val clear : 'a t -> unit
