(** The standard optimization pipeline ("O2") and the trial run used by
    Odin's pre-fuzzing survey.

    Pipeline shape follows the classic middle-end recipe: put the program
    into SSA form, simplify locally, then alternate interprocedural and
    local passes to a fixpoint (bounded).

    When a {!Telemetry.Recorder.t} is supplied, every pass execution is
    wrapped in a span (the LLVM PassInstrumentation analogue) and the
    registry gains [opt.rounds] and per-pass [opt.pass.changed]
    counters. Telemetry only observes: pass order, fixpoint behavior and
    the resulting IR are identical with and without a recorder.

    Re-entrancy contract: [run] / [run_fragment] may execute
    concurrently from multiple domains on DISTINCT modules. Pass values
    are built fresh per invocation and all analysis state lives in the
    per-call [Pass.make_ctx]; nothing in the pass set may introduce
    top-level mutable state (gensym counters, scratch tables, memo
    caches) — Session.rebuild depends on this to compile fragments in
    parallel. Callers running concurrently must pass distinct
    recorders (see [Telemetry.Recorder.fork]).

    Memoization lives one level up, not here: the pipeline is a pure
    function of its input module (given the round bound), so
    Session.rebuild short-circuits a fragment whose structural digest
    ([Ir.Shash]) it has already optimized and never calls
    [run_fragment] for it — the [session.opt_memo_hits] counter records
    those skips. Keeping this module memo-free is what keeps it
    trivially re-entrant. *)

let standard_passes ?(keep = [ "main" ]) () =
  [
    Internalize.pass ~keep;
    Mem2reg.pass;
    Constfold.pass;
    Instcombine.pass;
    Simplifycfg.pass;
    Gvn.pass;
    Dce.pass;
    Inline.pass;
    Dead_arg_elim.pass;
    Constfold.pass;
    Instcombine.pass;
    Jump_threading.pass;
    Loop_unroll.pass;
    Simplifycfg.pass;
    Gvn.pass;
    Dce.pass;
  ]

(* passes used for fragment recompilation: Internalize is *not* run —
   fragment symbol visibility was already decided by the partitioner, and
   demoting an exported symbol would break cross-fragment links *)
let fragment_passes () =
  [
    Mem2reg.pass;
    Constfold.pass;
    Instcombine.pass;
    Simplifycfg.pass;
    Gvn.pass;
    Dce.pass;
    Inline.pass;
    Dead_arg_elim.pass;
    Constfold.pass;
    Instcombine.pass;
    Jump_threading.pass;
    Loop_unroll.pass;
    Simplifycfg.pass;
    Gvn.pass;
    Dce.pass;
  ]

(* Modelled work of one pass execution: one scan of every defined
   instruction in the module. Accumulated into the [?cost] ref threaded
   from [run_fragment] — the tier bench compares this against the
   baseline backend, which skips the pipeline entirely. *)
let module_insts modul =
  List.fold_left
    (fun acc fn -> acc + Ir.Func.insn_count fn)
    0
    (Ir.Modul.defined_functions modul)

(* One pass execution, timed and counted when [recorder] is present. *)
let run_pass ?cost recorder ctx (p : Pass.t) =
  (match cost with
  | Some c -> c := !c + module_insts ctx.Pass.modul
  | None -> ());
  let changed =
    Telemetry.Recorder.span_opt recorder ~cat:"pass" p.Pass.name (fun () ->
        p.Pass.run ctx)
  in
  if changed then
    Telemetry.Recorder.count recorder ~labels:[ ("pass", p.Pass.name) ]
      "opt.pass.changed";
  changed

(* Bounded-fixpoint driver shared by [run] and [run_fragment]; [track]
   additionally advances [ctx.rounds] (the survey's round log). *)
let fixpoint ?recorder ?cost ~max_rounds ~track ctx passes =
  let rec go round =
    if round < max_rounds then begin
      if track then ctx.Pass.rounds <- round + 1;
      Telemetry.Recorder.count recorder "opt.rounds";
      let changed =
        List.fold_left
          (fun acc p -> run_pass ?cost recorder ctx p || acc)
          false passes
      in
      if changed then go (round + 1)
    end
  in
  go 0

(** Run the O2 pipeline to a bounded fixpoint. Returns the pass context
    (which carries the requirement log when [trial] is set). *)
let run ?recorder ?(trial = false) ?(max_rounds = 5) ?(keep = [ "main" ]) modul =
  Support.Fault.hit "opt.pipeline";
  let ctx = Pass.make_ctx ~trial modul in
  Telemetry.Recorder.span_opt recorder ~cat:"opt" "optimize" (fun () ->
      fixpoint ?recorder ~max_rounds ~track:true ctx (standard_passes ~keep ()));
  ctx

(** Optimize a single fragment module during recompilation. Declares the
    ["opt.pipeline"] fault site: an injected fault here surfaces as a
    fragment-compile failure that Session retries or degrades. *)
let run_fragment ?recorder ?cost ?(max_rounds = 2) modul =
  Support.Fault.hit "opt.pipeline";
  let ctx = Pass.make_ctx ~trial:false modul in
  Telemetry.Recorder.span_opt recorder ~cat:"opt" "optimize" (fun () ->
      fixpoint ?recorder ?cost ~max_rounds ~track:false ctx (fragment_passes ()));
  ctx
