(** CFG simplification: remove unreachable blocks, skip empty forwarding
    blocks, and merge straight-line block pairs (the "missing basic
    blocks" distortion of paper Section 2.2 — coverage probes placed per
    source block disappear when blocks are merged after optimization). *)

open Ir

(* Merge b into its unique successor s when b is s's unique predecessor.
   Phis in s are resolved to their single arm. *)
let merge_pairs (fn : Func.t) protected =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = Cfg.predecessors fn in
    let entry_label =
      match fn.Func.blocks with [] -> "" | e :: _ -> e.Func.label
    in
    let candidate =
      List.find_opt
        (fun (b : Func.block) ->
          match b.Func.term with
          | Ins.Br succ_l when not (String.equal succ_l b.Func.label) -> (
            match Cfg.SMap.find_opt succ_l preds with
            | Some [ only_pred ]
              when String.equal only_pred b.Func.label
                   && (not (String.equal succ_l entry_label))
                   && not (Cfg.SSet.mem succ_l protected) ->
              true
            | _ -> false)
          | _ -> false)
        fn.Func.blocks
    in
    match candidate with
    | None -> ()
    | Some b -> (
      match b.Func.term with
      | Ins.Br succ_l -> (
        match Func.find_block fn succ_l with
        | None -> ()
        | Some s ->
          (* Resolve phis in s: single predecessor, take that arm. *)
          List.iter
            (fun (i : Ins.ins) ->
              match i.Ins.kind with
              | Ins.Phi incoming -> (
                match List.assoc_opt b.Func.label incoming with
                | Some v -> Func.replace_uses fn i.Ins.id v
                | None -> ())
              | _ -> ())
            s.Func.insns;
          let non_phi =
            List.filter
              (fun (i : Ins.ins) ->
                match i.Ins.kind with Ins.Phi _ -> false | _ -> true)
              s.Func.insns
          in
          b.Func.insns <- b.Func.insns @ non_phi;
          b.Func.term <- s.Func.term;
          (* successors of s now flow from b: rename phi arms *)
          List.iter
            (fun succ2 ->
              match Func.find_block fn succ2 with
              | None -> ()
              | Some blk ->
                List.iter
                  (fun (i : Ins.ins) ->
                    match i.Ins.kind with
                    | Ins.Phi incoming ->
                      i.Ins.kind <-
                        Ins.Phi
                          (List.map
                             (fun (l, v) ->
                               if String.equal l s.Func.label then (b.Func.label, v)
                               else (l, v))
                             incoming)
                    | _ -> ())
                  blk.Func.insns)
            (Ins.successors s.Func.term);
          fn.Func.blocks <-
            List.filter (fun (blk : Func.block) -> blk != s) fn.Func.blocks;
          changed := true;
          continue_ := true)
      | _ -> ())
  done;
  !changed

(* Forward jumps through empty blocks that only contain "br %next" and no
   phis; predecessors retarget, phi arms in the target are re-labelled. *)
let skip_empty (fn : Func.t) protected =
  let changed = ref false in
  let entry_label = match fn.Func.blocks with [] -> "" | e :: _ -> e.Func.label in
  let empties =
    List.filter_map
      (fun (b : Func.block) ->
        match (b.Func.insns, b.Func.term) with
        | [], Ins.Br target
          when (not (String.equal b.Func.label target))
               && (not (String.equal b.Func.label entry_label))
               && not (Cfg.SSet.mem b.Func.label protected) ->
          Some (b.Func.label, target)
        | _ -> None)
      fn.Func.blocks
  in
  let preds = Cfg.predecessors fn in
  List.iter
    (fun (empty_l, target_l) ->
      match Func.find_block fn target_l with
      | None -> ()
      | Some target ->
        (* Retargeting is only safe w.r.t. phis when target's phi arms can
           be re-attributed uniquely: require that no predecessor of the
           empty block is already a predecessor of the target. *)
        let empty_preds =
          Option.value ~default:[] (Cfg.SMap.find_opt empty_l preds)
        in
        let target_preds =
          Option.value ~default:[] (Cfg.SMap.find_opt target_l preds)
        in
        let has_phi =
          List.exists
            (fun (i : Ins.ins) ->
              match i.Ins.kind with Ins.Phi _ -> true | _ -> false)
            target.Func.insns
        in
        let conflict =
          List.exists (fun p -> List.mem p target_preds) empty_preds
        in
        if (not conflict) && empty_preds <> [] then begin
          let retarget = function
            | Ins.Br l when String.equal l empty_l -> Ins.Br target_l
            | Ins.Cbr (c, a, b) ->
              let fix l = if String.equal l empty_l then target_l else l in
              Ins.Cbr (c, fix a, fix b)
            | Ins.Switch (v, d, cases) ->
              let fix l = if String.equal l empty_l then target_l else l in
              Ins.Switch (v, fix d, List.map (fun (k, l) -> (k, fix l)) cases)
            | t -> t
          in
          List.iter
            (fun p ->
              match Func.find_block fn p with
              | None -> ()
              | Some pb -> pb.Func.term <- retarget pb.Func.term)
            empty_preds;
          if has_phi then
            List.iter
              (fun (i : Ins.ins) ->
                match i.Ins.kind with
                | Ins.Phi incoming ->
                  let expanded =
                    List.concat_map
                      (fun (l, v) ->
                        if String.equal l empty_l then
                          List.map (fun p -> (p, v)) empty_preds
                        else [ (l, v) ])
                      incoming
                  in
                  i.Ins.kind <- Ins.Phi expanded
                | _ -> ())
              target.Func.insns;
          changed := true
        end)
    empties;
  if !changed then ignore (Cfg.remove_unreachable fn);
  !changed

let run_function protected (fn : Func.t) =
  let c1 = Cfg.remove_unreachable fn in
  let c2 = skip_empty fn protected in
  let c3 = merge_pairs fn protected in
  c1 || c2 || c3

(* A module pass rather than [Pass.function_pass]: the address-taken
   labels come from ONE whole-module scan shared by every function
   (asking per function rescans the module and turns the pass
   quadratic in program size). *)
let pass =
  Pass.mk "simplifycfg" (fun ctx ->
      let taken = Cfg.address_taken_map ctx.Pass.modul in
      List.fold_left
        (fun changed (fn : Func.t) ->
          let protected =
            Option.value ~default:Cfg.SSet.empty
              (Hashtbl.find_opt taken fn.Func.name)
          in
          run_function protected fn || changed)
        false
        (Modul.defined_functions ctx.Pass.modul))
