(* Mutation testing served by probe toggling: operator units, the
   disarmed-mutants-are-bit-pristine contract, kill-matrix determinism
   across worker counts and farm substrates, checkpoint/resume
   equality, and the timeout verdict for non-terminating mutants.

   The headline contract mirrors the fuzzing farm's: per-mutant
   verdicts are pure functions of (mutant, suite), so the merged kill
   matrix is bit-identical for --workers 1/2/4, for domains vs procs,
   and across a checkpoint/resume split. *)

module Pool = Support.Pool
module Gen = Mutate.Gen
module Analysis = Mutate.Analysis

(* The test binary doubles as the worker executable: the supervisor
   re-execs us with the hidden subcommand, exactly like odinc. Must run
   before Alcotest sees argv. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "mutate-worker" then
    Analysis.worker_main ()

let worker_argv = [| Sys.executable_name; "mutate-worker" |]
let compile = Minic.Lower.compile

(* Entry follows the workload convention: int tmain(char *buf, int len).
   Every operator family has a deliberately killable site:
   - aor:   len + 3 -> len - 3
   - ror:   len < 4 -> len <= 4 (boundary input len = 4 in the suite)
   - const: the literals 3, 4, 2, 12 each +1
   - sdl:   the store to the global accumulator
   - brs:   the if's then/else swap *)
let unit_src =
  {|
static int g;
int tmain(char *buf, int len) {
  int acc = len + 3;
  if (len < 4) acc = acc * 2;
  g = acc;
  acc = acc ^ 12;
  return acc + g;
}
|}

let unit_suite = [ "ab"; "abcd"; "abcdef" ]

let mk_cfg ?(workers = 1) ?(mode = Analysis.Domains) ?families ?limit
    ?(max_steps = 2_000_000) ?deadline ?(chunk = 8) ?checkpoint ?(resume = false)
    ?stop_after () =
  {
    Analysis.default_config with
    Analysis.mc_workers = workers;
    mc_mode = mode;
    mc_families = Option.value ~default:Gen.all_families families;
    mc_limit = limit;
    mc_max_steps = max_steps;
    mc_deadline = deadline;
    mc_chunk = chunk;
    mc_checkpoint = checkpoint;
    mc_resume = resume;
    mc_stop_after = stop_after;
    mc_worker_argv = Some worker_argv;
    mc_worker_timeout = 30.;
  }

let run ?telemetry ?journal ?(entry = "tmain") cfg ~suite m =
  Analysis.run ?telemetry ?journal ~entry ~suite cfg m

(* ---------------- units: operator selection ---------------- *)

let test_families_of_spec () =
  Alcotest.(check int) "all" 5 (List.length (Gen.families_of_spec "all"));
  Alcotest.(check int) "empty means all" 5 (List.length (Gen.families_of_spec ""));
  Alcotest.(check bool) "aor,ror" true
    (Gen.families_of_spec "aor, ror" = [ Gen.Aor; Gen.Ror ]);
  Alcotest.check_raises "unknown operator rejected"
    (Invalid_argument
       "unknown mutation operator \"bogus\" (expected aor,ror,const,sdl,brs)")
    (fun () -> ignore (Gen.families_of_spec "bogus"))

(* ---------------- units: each operator plants and kills ---------------- *)

let rows_of fam (m : Analysis.matrix) =
  List.filter (fun r -> r.Analysis.r_family = fam) m.Analysis.m_rows

let test_operators_plant_and_kill () =
  let matrix, stats = run (mk_cfg ()) ~suite:unit_suite (compile unit_src) in
  Alcotest.(check bool) "mutants generated" true (matrix.Analysis.m_generated > 0);
  Alcotest.(check int) "suite size" 3 matrix.Analysis.m_tests;
  List.iter
    (fun fam ->
      let rows = rows_of fam matrix in
      Alcotest.(check bool)
        (Gen.family_to_string fam ^ " planted")
        true (rows <> []);
      Alcotest.(check bool)
        (Gen.family_to_string fam ^ " killed at least once")
        true
        (List.exists (fun r -> r.Analysis.r_verdict = Analysis.Killed) rows))
    Gen.all_families;
  (* score is consistent with the verdict counts *)
  Alcotest.(check int) "verdicts partition the mutants"
    matrix.Analysis.m_generated
    (matrix.Analysis.m_killed + matrix.Analysis.m_survived
   + matrix.Analysis.m_timeout);
  (* one initial compile; every mutant served by the toggle path *)
  Alcotest.(check int) "one full compile" 1 stats.Analysis.s_initial_links;
  Alcotest.(check int) "no full relinks beyond the initial build"
    stats.Analysis.s_initial_links stats.Analysis.s_full_links;
  Alcotest.(check bool) "every mutant relinked incrementally" true
    (stats.Analysis.s_incr_links >= matrix.Analysis.m_generated)

(* the boundary mutant (ror slt->sle) is only caught by the boundary
   input: drop len=4 from the suite and it must survive *)
let test_boundary_input_matters () =
  let cfg = mk_cfg ~families:[ Gen.Ror ] () in
  let with_boundary, _ = run cfg ~suite:unit_suite (compile unit_src) in
  let without, _ = run cfg ~suite:[ "ab"; "abcdef" ] (compile unit_src) in
  let killed m =
    List.length
      (List.filter
         (fun r -> r.Analysis.r_verdict = Analysis.Killed)
         m.Analysis.m_rows)
  in
  Alcotest.(check bool) "boundary input kills more ror mutants" true
    (killed with_boundary > killed without);
  Alcotest.(check bool) "a ror mutant survives the weakened suite" true
    (without.Analysis.m_survived > 0)

(* ---------------- semantics: disarmed mutants are bit-pristine -------- *)

module L = Link.Linker

let exe_obs (exe : L.exe) =
  let img =
    List.sort compare
      (List.map (fun (b, by) -> (b, Bytes.to_string by)) exe.L.image)
  in
  let syms =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) exe.L.sym_addr []
    |> List.sort compare
  in
  (img, syms, exe.L.data_end)

let test_disarmed_is_pristine () =
  let m = compile unit_src in
  let plain = Odin.Session.create ~keep:[ "tmain" ] ~pool:Pool.serial m in
  ignore (Odin.Session.build plain);
  let planted = Odin.Session.create ~keep:[ "tmain" ] ~pool:Pool.serial
      (Ir.Clone.clone_module m)
  in
  let mutants = Gen.setup planted in
  Alcotest.(check bool) "mutants planted" true (mutants <> []);
  ignore (Odin.Session.build planted);
  Alcotest.(check bool) "image with all mutants disarmed is bit-pristine"
    true
    (exe_obs (Odin.Session.executable plain)
    = exe_obs (Odin.Session.executable planted));
  (* arm + disarm one mutant of every family: the image returns to
     pristine through the cached objects *)
  List.iter
    (fun fam ->
      match
        List.find_opt (fun p -> Gen.family_of_probe p = Some fam) mutants
      with
      | None -> Alcotest.failf "no %s mutant" (Gen.family_to_string fam)
      | Some p ->
        ignore (Odin.Session.refresh_toggles planted [ (p, true) ]);
        ignore (Odin.Session.refresh_toggles planted [ (p, false) ]);
        Alcotest.(check bool)
          (Gen.family_to_string fam ^ ": disarm returns to pristine")
          true
          (exe_obs (Odin.Session.executable plain)
          = exe_obs (Odin.Session.executable planted)))
    Gen.all_families

(* differential: with every mutant disarmed, the VM agrees with the
   reference interpreter on the pristine module over the whole suite *)
let test_differential_vm_interp () =
  let m = compile unit_src in
  let session =
    Odin.Session.create ~keep:[ "tmain" ] ~pool:Pool.serial
      (Ir.Clone.clone_module m)
  in
  ignore (Gen.setup session);
  ignore (Odin.Session.build session);
  List.iter
    (fun input ->
      let vm = Vm.create (Odin.Session.executable session) in
      let addr = Vm.write_buffer vm input in
      let got = Vm.call vm "tmain" [ addr; Int64.of_int (String.length input) ] in
      let st = Ir.Interp.create m in
      let iaddr = Ir.Interp.alloc_input st input in
      let want =
        Ir.Interp.run st "tmain" [ iaddr; Int64.of_int (String.length input) ]
      in
      Alcotest.(check int64)
        (Printf.sprintf "tmain(%S)" input)
        want got)
    unit_suite

(* ---------------- batching: toggle_many is one schedule pass --------- *)

let counter_value session name =
  Telemetry.Metrics.value
    (Telemetry.Metrics.counter
       session.Odin.Session.telemetry.Telemetry.Recorder.metrics name)

let test_toggle_many_one_pass () =
  let m = Workloads.Generate.compile Workloads.Profile.tiny in
  let session =
    Odin.Session.create ~mode:Odin.Partition.Max
      ~keep:[ Fuzzer.Campaign.entry ] ~host:Workloads.Generate.host_functions
      ~pool:Pool.serial m
  in
  let mutants = Gen.setup session in
  ignore (Odin.Session.build session);
  let n_frags =
    Array.length session.Odin.Session.plan.Odin.Partition.fragments
  in
  Alcotest.(check int) "initial build walks the whole program" n_frags
    (counter_value session "session.schedule_visited");
  (* pick K mutants in K distinct functions; the batched refresh must
     visit O(K) fragments and record ONE recompile event *)
  let distinct =
    let seen = Hashtbl.create 7 in
    List.filter
      (fun (p : Instr.Probe.t) ->
        if Hashtbl.mem seen p.Instr.Probe.target then false
        else begin
          Hashtbl.add seen p.Instr.Probe.target ();
          true
        end)
      mutants
  in
  let batch = List.filteri (fun i _ -> i < 4) distinct in
  let k = List.length batch in
  Alcotest.(check bool) "found several distinct targets" true (k >= 2);
  let events_before = List.length (Odin.Session.events session) in
  (match
     Odin.Session.refresh_toggles session
       (List.map (fun p -> (p, true)) batch)
   with
  | Some (Odin.Session.Ok, Some _) -> ()
  | _ -> Alcotest.fail "batched refresh did not succeed");
  Alcotest.(check int) "one recompile event for the whole batch"
    (events_before + 1)
    (List.length (Odin.Session.events session));
  (* O(K): under Max partitioning each function is its own fragment *)
  Alcotest.(check int) "schedule visited exactly the K dirty fragments"
    (n_frags + k)
    (counter_value session "session.schedule_visited")

(* ---------------- determinism across workers and substrates ----------- *)

let tiny = Workloads.Profile.tiny
let tiny_suite = Workloads.Generate.seed_inputs ~count:3 tiny

let run_tiny ?(workers = 1) ?(mode = Analysis.Domains) ?checkpoint
    ?(resume = false) ?stop_after () =
  run ~entry:Fuzzer.Campaign.entry
    (mk_cfg ~workers ~mode ~limit:24 ~chunk:5 ?checkpoint ~resume ?stop_after ())
    ~suite:tiny_suite
    (Workloads.Generate.compile tiny)

let check_matrix msg (a : Analysis.matrix) (b : Analysis.matrix) =
  Alcotest.(check bool) msg true (a = b)

let test_determinism_across_workers () =
  let m1, _ = run_tiny ~workers:1 () in
  let m2, _ = run_tiny ~workers:2 () in
  let m4, _ = run_tiny ~workers:4 () in
  Alcotest.(check bool) "campaign found mutants" true
    (m1.Analysis.m_generated > 0);
  check_matrix "workers 1 = workers 2" m1 m2;
  check_matrix "workers 1 = workers 4" m1 m4

let test_determinism_across_substrates () =
  let dm, _ = run_tiny ~workers:2 () in
  let pm, pstats = run_tiny ~workers:2 ~mode:Analysis.Procs () in
  check_matrix "domains = procs" dm pm;
  Alcotest.(check int) "no restarts in a clean run" 0 pstats.Analysis.s_restarts

(* ---------------- checkpoint / resume ---------------- *)

let with_tmp f =
  let path = Filename.temp_file "mutate_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".prev" ])
    (fun () -> f path)

let test_resume_equals_uninterrupted () =
  with_tmp @@ fun path ->
  let full, _ = run_tiny ~workers:2 () in
  (* phase 1: stop mid-campaign after the first rounds' rows *)
  let partial, _ =
    run_tiny ~workers:2 ~checkpoint:path ~stop_after:8 ()
  in
  Alcotest.(check bool) "stopped early" true
    (partial.Analysis.m_generated < full.Analysis.m_generated);
  (* phase 2: resume from the checkpoint; rows already done are loaded,
     not re-run *)
  let resumed, stats = run_tiny ~workers:2 ~checkpoint:path ~resume:true () in
  Alcotest.(check bool) "rows came from the checkpoint" true
    (stats.Analysis.s_resumed_rows >= partial.Analysis.m_generated);
  check_matrix "resumed = uninterrupted" full resumed

let test_resume_rejects_wrong_target () =
  with_tmp @@ fun path ->
  let _ = run_tiny ~workers:1 ~checkpoint:path ~stop_after:4 () in
  Alcotest.(check bool) "wrong module rejected" true
    (try
       ignore
         (run
            (mk_cfg ~limit:24 ~checkpoint:path ~resume:true ())
            ~suite:tiny_suite (compile unit_src));
       false
     with Invalid_argument _ -> true)

(* ---------------- the timeout verdict ---------------- *)

(* `i = i + 1` under aor becomes `i = i - 1`: the loop never terminates
   and the step budget must convert the hang into a Timeout verdict
   rather than stalling the campaign. *)
let loop_src =
  {|
int tmain(char *buf, int len) {
  int i = 0;
  int acc = 0;
  while (i < 10) { acc = acc + i; i = i + 1; }
  return acc + len;
}
|}

let test_timeout_verdict () =
  let cfg = mk_cfg ~families:[ Gen.Aor ] ~max_steps:50_000 () in
  let matrix, _ = run cfg ~suite:[ "ab" ] (compile loop_src) in
  Alcotest.(check bool) "some aor mutant hangs" true
    (matrix.Analysis.m_timeout > 0);
  Alcotest.(check bool) "hang counts toward the score" true
    (matrix.Analysis.m_score > 0.);
  (* the Hang cell is recorded in the matrix row *)
  Alcotest.(check bool) "a row holds a Hang outcome" true
    (List.exists
       (fun r -> List.mem Analysis.Hang r.Analysis.r_outcomes)
       matrix.Analysis.m_rows)

(* a hanging mutant in procs mode must not wedge the farm either *)
let test_timeout_verdict_procs () =
  let cfg =
    mk_cfg ~mode:Analysis.Procs ~families:[ Gen.Aor ] ~max_steps:50_000 ()
  in
  let matrix, stats = run cfg ~suite:[ "ab" ] (compile loop_src) in
  Alcotest.(check bool) "procs: some aor mutant hangs" true
    (matrix.Analysis.m_timeout > 0);
  Alcotest.(check int) "procs: no restarts needed" 0 stats.Analysis.s_restarts

(* ---------------- rendering ---------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_render () =
  let matrix, _ = run (mk_cfg ()) ~suite:unit_suite (compile unit_src) in
  let s = Analysis.render matrix in
  Alcotest.(check bool) "mentions the score" true (contains s "score:");
  Alcotest.(check bool) "per-operator breakdown present" true
    (contains s "per-operator")

let () =
  Alcotest.run "mutate"
    [
      ( "units",
        [
          Alcotest.test_case "families_of_spec" `Quick test_families_of_spec;
          Alcotest.test_case "operators plant and kill" `Quick
            test_operators_plant_and_kill;
          Alcotest.test_case "boundary input matters" `Quick
            test_boundary_input_matters;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "disarmed is bit-pristine" `Quick
            test_disarmed_is_pristine;
          Alcotest.test_case "differential vm vs interp" `Quick
            test_differential_vm_interp;
          Alcotest.test_case "toggle_many is one pass" `Quick
            test_toggle_many_one_pass;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "workers 1/2/4" `Quick
            test_determinism_across_workers;
          Alcotest.test_case "domains vs procs" `Quick
            test_determinism_across_substrates;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume equals uninterrupted" `Quick
            test_resume_equals_uninterrupted;
          Alcotest.test_case "resume rejects wrong target" `Quick
            test_resume_rejects_wrong_target;
        ] );
      ( "timeouts",
        [
          Alcotest.test_case "timeout verdict" `Quick test_timeout_verdict;
          Alcotest.test_case "timeout verdict (procs)" `Quick
            test_timeout_verdict_procs;
        ] );
      ("report", [ Alcotest.test_case "render" `Quick test_render ]);
    ]
