(* The fuzzing farm: worker-count invariance, corpus-sync dedup, global
   prune votes, fault-tolerant barriers, the shared object cache and the
   store GC.

   The headline contract is the determinism claim from farm.mli: for a
   fixed (seed, sync-interval) the farm's logical results — global
   coverage set, pruned-probe set, corpus, even total cycles — are
   bit-identical across --workers 1/2/4. Worker counts only decide who
   computes which execution slot, never what the slot computes. *)

module Pool = Support.Pool
module Fault = Support.Fault
module Objstore = Support.Objstore
module Csync = Farm.Csync

let tiny = Workloads.Profile.tiny
let entry = Fuzzer.Campaign.entry
let seeds = Workloads.Generate.seed_inputs ~count:2 tiny

let run_farm ?(workers = 1) ?(execs = 60) ?(sync = 20) ?(quorum = 1)
    ?cache_dir ?cache_limit ?(pool = Pool.serial) () =
  let m = Workloads.Generate.compile tiny in
  let cfg =
    {
      Farm.default_config with
      Farm.fc_workers = workers;
      fc_execs = execs;
      fc_sync_interval = sync;
      fc_prune_quorum = quorum;
      fc_cache_limit = cache_limit;
    }
  in
  Farm.run ~pool ?cache_dir ~entry ~seeds cfg m

(* ---------------- worker-count invariance ------------------------------ *)

let logical st =
  ( st.Farm.fs_coverage,
    st.Farm.fs_pruned,
    st.Farm.fs_corpus,
    st.Farm.fs_execs,
    st.Farm.fs_total_cycles )

let test_invariance_across_workers () =
  let sts = List.map (fun w -> run_farm ~workers:w ()) [ 1; 2; 4 ] in
  let base = List.hd sts in
  List.iteri
    (fun i st ->
      let w = List.nth [ 1; 2; 4 ] i in
      Alcotest.(check (list int))
        (Printf.sprintf "coverage identical (w=%d)" w)
        base.Farm.fs_coverage st.Farm.fs_coverage;
      Alcotest.(check (list int))
        (Printf.sprintf "pruned identical (w=%d)" w)
        base.Farm.fs_pruned st.Farm.fs_pruned;
      Alcotest.(check (list string))
        (Printf.sprintf "corpus identical (w=%d)" w)
        base.Farm.fs_corpus st.Farm.fs_corpus;
      Alcotest.(check int)
        (Printf.sprintf "execs identical (w=%d)" w)
        base.Farm.fs_execs st.Farm.fs_execs;
      Alcotest.(check int)
        (Printf.sprintf "cycles identical (w=%d)" w)
        base.Farm.fs_total_cycles st.Farm.fs_total_cycles)
    sts;
  Alcotest.(check bool) "found coverage" true (base.Farm.fs_coverage <> []);
  Alcotest.(check bool) "pruned something" true (base.Farm.fs_pruned <> []);
  (* multi-worker runs share the object cache: workers 1..N-1 build
     against worker 0's compiled fragments *)
  List.iteri
    (fun i st ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "cross hits (w=%d)" (List.nth [ 1; 2; 4 ] i))
          true
          (st.Farm.fs_cross_hits > 0))
    sts

let test_invariance_no_prune () =
  let a = run_farm ~workers:1 ~quorum:0 () in
  let b = run_farm ~workers:4 ~quorum:0 () in
  Alcotest.(check bool) "nothing pruned" true (a.Farm.fs_pruned = []);
  Alcotest.(check (list int)) "coverage identical" a.Farm.fs_coverage b.Farm.fs_coverage;
  Alcotest.(check int) "cycles identical" a.Farm.fs_total_cycles b.Farm.fs_total_cycles

let test_repeat_determinism () =
  let a = run_farm ~workers:2 () and b = run_farm ~workers:2 () in
  Alcotest.(check bool) "two identical runs" true (logical a = logical b)

let test_invariance_on_domains () =
  (* same contract on a real domain pool: the schedule, not the pool,
     decides the results *)
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let a = run_farm ~workers:1 ~execs:40 ~sync:20 () in
  let b = run_farm ~workers:4 ~execs:40 ~sync:20 ~pool () in
  Alcotest.(check (list int)) "coverage identical" a.Farm.fs_coverage b.Farm.fs_coverage;
  Alcotest.(check (list int)) "pruned identical" a.Farm.fs_pruned b.Farm.fs_pruned;
  Alcotest.(check (list string)) "corpus identical" a.Farm.fs_corpus b.Farm.fs_corpus

(* ---------------- corpus-sync protocol --------------------------------- *)

let item ?(fns = []) ~idx ~input ~fired () =
  {
    Csync.it_index = idx;
    it_input = input;
    it_cycles = 100;
    it_fired = fired;
    it_fns = fns;
    it_probe_cost = [];
  }

let test_csync_dedup () =
  let t = Csync.create ~n_probes:16 in
  let accepted =
    Csync.merge t
      [
        item ~idx:0 ~input:"aaa" ~fired:[ 1; 2 ] ();
        (* byte-identical to slot 0: dropped *)
        item ~idx:1 ~input:"aaa" ~fired:[ 3 ] ();
        (* novel bytes, no new coverage: stale *)
        item ~idx:2 ~input:"bbb" ~fired:[ 2 ] ();
        item ~idx:3 ~input:"ccc" ~fired:[ 2; 5 ] ();
      ]
  in
  Alcotest.(check int) "offered" 4 t.Csync.offered;
  Alcotest.(check int) "duplicates" 1 t.Csync.duplicates;
  Alcotest.(check int) "stale" 1 t.Csync.stale;
  Alcotest.(check int) "accepted" 2 t.Csync.accepted;
  Alcotest.(check (list (pair string int)))
    "accepted inputs with fresh counts"
    [ ("aaa", 2); ("ccc", 1) ]
    (List.map (fun (it, fresh) -> (it.Csync.it_input, fresh)) accepted);
  Alcotest.(check (list int)) "bitmap" [ 1; 2; 5 ] (Csync.covered_list t);
  Alcotest.(check int) "count" 3 (Csync.covered_count t)

let test_csync_dedup_across_rounds () =
  let t = Csync.create ~n_probes:8 in
  ignore (Csync.merge t [ item ~idx:0 ~input:"x" ~fired:[ 0 ] () ]);
  ignore (Csync.merge t [ item ~idx:1 ~input:"x" ~fired:[ 1 ] () ]);
  Alcotest.(check int) "duplicate in a later round" 1 t.Csync.duplicates;
  (* the duplicate's coverage is NOT merged: dedup happens first *)
  Alcotest.(check (list int)) "bitmap" [ 0 ] (Csync.covered_list t);
  Alcotest.(check bool) "rate" true (Csync.dedup_rate t = 50.)

let test_csync_bounds () =
  let t = Csync.create ~n_probes:4 in
  ignore (Csync.merge t [ item ~idx:0 ~input:"x" ~fired:[ -1; 2; 99 ] () ]);
  (* out-of-range pids are ignored, in-range ones land *)
  Alcotest.(check (list int)) "bitmap" [ 2 ] (Csync.covered_list t)

(* ---------------- global prune votes ----------------------------------- *)

let test_votes () =
  let v = Instr.Votes.create () in
  Instr.Votes.record v ~pid:3;
  Instr.Votes.record v ~pid:3;
  Instr.Votes.record v ~pid:7;
  Alcotest.(check int) "count" 2 (Instr.Votes.count v 3);
  Alcotest.(check int) "distinct" 2 (Instr.Votes.distinct v);
  Alcotest.(check (list int))
    "quorum 1" [ 3; 7 ]
    (Instr.Votes.saturated v ~quorum:1 ~already:(fun _ -> false));
  Alcotest.(check (list int))
    "quorum 2" [ 3 ]
    (Instr.Votes.saturated v ~quorum:2 ~already:(fun _ -> false));
  Alcotest.(check (list int))
    "already pruned excluded" [ 7 ]
    (Instr.Votes.saturated v ~quorum:1 ~already:(fun pid -> pid = 3));
  Alcotest.(check (list int))
    "quorum 0 disables" []
    (Instr.Votes.saturated v ~quorum:0 ~already:(fun _ -> false));
  let w = Instr.Votes.create () in
  Instr.Votes.record w ~pid:7;
  Instr.Votes.record w ~pid:9;
  Instr.Votes.merge ~into:v w;
  Alcotest.(check int) "merged tally" 2 (Instr.Votes.count v 7);
  Alcotest.(check int) "merged distinct" 3 (Instr.Votes.distinct v)

let test_weighted_votes () =
  (* a killed-and-restarted worker's evidence counts for less: weighted
     votes accumulate fractionally and only saturate when the weighted
     tally reaches the quorum *)
  let v = Instr.Votes.create () in
  Instr.Votes.record ~weight:0.5 v ~pid:3;
  Instr.Votes.record ~weight:0.5 v ~pid:3;
  Alcotest.(check (float 1e-9)) "fractional tally" 1.0 (Instr.Votes.tally v 3);
  Alcotest.(check int) "count floors" 1 (Instr.Votes.count v 3);
  Alcotest.(check (list int))
    "two half votes reach quorum 1" [ 3 ]
    (Instr.Votes.saturated v ~quorum:1 ~already:(fun _ -> false));
  Alcotest.(check (list int))
    "but not quorum 2" []
    (Instr.Votes.saturated v ~quorum:2 ~already:(fun _ -> false));
  Instr.Votes.record ~weight:1.0 v ~pid:3;
  Alcotest.(check (list int))
    "1.0 more saturates quorum 2" [ 3 ]
    (Instr.Votes.saturated v ~quorum:2 ~already:(fun _ -> false));
  (* twice-restarted at decay 0.5: quarter-weight votes *)
  let w = Instr.Votes.create () in
  Instr.Votes.record ~weight:(0.5 *. 0.5) w ~pid:9;
  Instr.Votes.record ~weight:(0.5 *. 0.5) w ~pid:9;
  Alcotest.(check (list int))
    "half a vote never saturates quorum 1" []
    (Instr.Votes.saturated w ~quorum:1 ~already:(fun _ -> false));
  (* entries/restore round-trip: the checkpoint path *)
  let v' = Instr.Votes.restore (Instr.Votes.entries v) in
  Alcotest.(check bool) "restore round-trips" true
    (Instr.Votes.entries v' = Instr.Votes.entries v)

let test_merge_round_weighted () =
  let cfg = { Farm.default_config with Farm.fc_prune_quorum = 2 } in
  let o = Farm.Orch.create ~n_probes:4 cfg in
  let mk idx input =
    {
      Csync.it_index = idx;
      it_input = input;
      it_cycles = 5;
      it_fired = [ 1 ];
      it_fns = [];
      it_probe_cost = [];
    }
  in
  let _, prunes = Farm.Orch.merge_round ~weight:(fun _ -> 0.5) o [ mk 0 "a" ] in
  Alcotest.(check (list int)) "half-weight vote: below quorum" [] prunes;
  let _, prunes = Farm.Orch.merge_round ~weight:(fun _ -> 1.5) o [ mk 1 "b" ] in
  Alcotest.(check (list int)) "weighted tally 2.0 saturates" [ 1 ] prunes;
  Alcotest.(check bool) "marked pruned" true (Farm.Orch.pruned o 1)

(* ---------------- adaptive sync intervals ------------------------------ *)

let test_adaptive_interval () =
  let cfg =
    {
      Farm.default_config with
      Farm.fc_sync_interval = 10;
      fc_adaptive_sync = true;
      fc_prune_quorum = 0;
    }
  in
  let o = Farm.Orch.create ~n_probes:4 cfg in
  let idx = ref 0 in
  let mk ~fired () =
    incr idx;
    {
      Csync.it_index = !idx;
      it_input = Printf.sprintf "input-%d" !idx;
      it_cycles = 5;
      it_fired = fired;
      it_fns = [];
      it_probe_cost = [];
    }
  in
  let quiet () = ignore (Farm.Orch.merge_round o [ mk ~fired:[] () ]) in
  let interval () = o.Farm.Orch.o_interval in
  Alcotest.(check int) "starts at base" 10 (interval ());
  quiet ();
  quiet ();
  Alcotest.(check int) "two quiet barriers: unchanged" 10 (interval ());
  quiet ();
  Alcotest.(check int) "third quiet barrier doubles" 20 (interval ());
  for _ = 1 to 6 do quiet () done;
  Alcotest.(check int) "keeps doubling" 80 (interval ());
  for _ = 1 to 30 do quiet () done;
  Alcotest.(check int) "capped at 8x base" 80 (interval ());
  (* fresh coverage resets to the base interval *)
  ignore (Farm.Orch.merge_round o [ mk ~fired:[ 2 ] () ]);
  Alcotest.(check int) "accept resets" 10 (interval ());
  (* disabled by default: quiet barriers never move the interval *)
  let o' =
    Farm.Orch.create ~n_probes:4
      { cfg with Farm.fc_adaptive_sync = false }
  in
  for _ = 1 to 9 do ignore (Farm.Orch.merge_round o' [ mk ~fired:[] () ]) done;
  Alcotest.(check int) "fixed when disabled" 10 o'.Farm.Orch.o_interval

let test_adaptive_farm_end_to_end () =
  (* a farm with adaptive sync on a target that plateaus runs fewer,
     longer rounds; the fixed-interval run pins the historical count *)
  let m = Workloads.Generate.compile tiny in
  let mk adaptive =
    let cfg =
      {
        Farm.default_config with
        Farm.fc_workers = 2;
        fc_execs = 200;
        fc_sync_interval = 10;
        fc_adaptive_sync = adaptive;
      }
    in
    Farm.run ~pool:Pool.serial ~entry ~seeds cfg m
  in
  let fixed = mk false and adaptive = mk true in
  Alcotest.(check bool) "fewer rounds when adaptive" true
    (adaptive.Farm.fs_sync_rounds < fixed.Farm.fs_sync_rounds);
  Alcotest.(check (list int)) "coverage unchanged by pacing"
    fixed.Farm.fs_coverage adaptive.Farm.fs_coverage

(* ---------------- AFL-style energy ------------------------------------- *)

let test_seed_energy () =
  let e ~cycles ~fns =
    Fuzzer.Campaign.seed_energy ~avg_cycles:1000 ~cycles ~fn_cycles:fns
  in
  let fast = e ~cycles:200 ~fns:[ ("f", 100); ("g", 100) ] in
  let slow = e ~cycles:5000 ~fns:[ ("f", 100); ("g", 100) ] in
  Alcotest.(check bool) "fast beats slow" true (fast > slow);
  let narrow = e ~cycles:1000 ~fns:[ ("f", 1000) ] in
  let broad =
    e ~cycles:1000 ~fns:[ ("f", 250); ("g", 250); ("h", 250); ("i", 250) ]
  in
  Alcotest.(check bool) "breadth beats concentration" true (broad > narrow);
  Alcotest.(check bool) "positive floor" true
    (Fuzzer.Campaign.seed_energy ~avg_cycles:0 ~cycles:0 ~fn_cycles:[] >= 1)

let test_energy_drives_pick () =
  let c = Fuzzer.Corpus.create () in
  Fuzzer.Corpus.add c ~energy:1 ~data:"cold" ~exec_cycles:100 ~new_blocks:1 ();
  Fuzzer.Corpus.add c ~energy:10_000 ~data:"hot" ~exec_cycles:100 ~new_blocks:1 ();
  let rng = Support.Rng.create 7 in
  let hot = ref 0 in
  for _ = 1 to 200 do
    match Fuzzer.Corpus.pick c rng with
    | Some s when s.Fuzzer.Corpus.data = "hot" -> incr hot
    | _ -> ()
  done;
  Alcotest.(check bool) "high energy dominates" true (!hot > 150)

(* ---------------- fault tolerance -------------------------------------- *)

let test_worker_death_at_sync () =
  (* worker 2 drew no slot in the 2-seed round 0 and dies at its
     rendezvous (3rd farm.sync hit), before it has produced any merged
     execution: the 4-worker farm must then be logically identical to a
     clean run, just one lane short *)
  let clean = run_farm ~workers:1 () in
  let plan =
    Fault.plan [ Fault.rule ~trigger:(Fault.Nth 3) "farm.sync" Fault.Raise ]
  in
  let faulted = Fault.with_plan plan (fun () -> run_farm ~workers:4 ()) in
  Alcotest.(check (list (pair int string)))
    "worker 2 dead"
    [ (2, "fault at farm.sync") ]
    faulted.Farm.fs_dead;
  Alcotest.(check (list int)) "coverage unaffected" clean.Farm.fs_coverage
    faulted.Farm.fs_coverage;
  Alcotest.(check (list int)) "pruned unaffected" clean.Farm.fs_pruned
    faulted.Farm.fs_pruned;
  Alcotest.(check (list string)) "corpus unaffected" clean.Farm.fs_corpus
    faulted.Farm.fs_corpus;
  Alcotest.(check int) "cycles unaffected" clean.Farm.fs_total_cycles
    faulted.Farm.fs_total_cycles;
  (* survivors are deterministic: same plan, same outcome *)
  let again = Fault.with_plan plan (fun () -> run_farm ~workers:4 ()) in
  Alcotest.(check bool) "repeatable under faults" true
    (logical faulted = logical again);
  (* killing a slot-holding worker instead discards its in-flight round:
     the farm loses that seed execution but still completes *)
  let lossy =
    Fault.with_plan
      (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 2) "farm.sync" Fault.Raise ])
      (fun () -> run_farm ~workers:4 ())
  in
  Alcotest.(check (list (pair int string)))
    "worker 1 dead"
    [ (1, "fault at farm.sync") ]
    lossy.Farm.fs_dead;
  Alcotest.(check int) "seed slot 1 lost with its worker"
    (clean.Farm.fs_execs - 1) lossy.Farm.fs_execs

let test_all_workers_die () =
  let st =
    Fault.with_plan
      (Fault.plan [ Fault.rule "farm.sync" Fault.Raise ])
      (fun () -> run_farm ~workers:2 ())
  in
  Alcotest.(check int) "both dead" 2 (List.length st.Farm.fs_dead);
  (* round 0 still merged its items before the rendezvous *)
  Alcotest.(check int) "only the seed round ran" 1 st.Farm.fs_sync_rounds

let test_vm_step_transient_skips () =
  let st =
    Fault.with_plan
      (Fault.plan
         [ Fault.rule ~trigger:(Fault.Nth 40) "vm.step" Fault.Transient ])
      (fun () -> run_farm ~workers:2 ())
  in
  Alcotest.(check int) "one execution skipped" 1 st.Farm.fs_skipped;
  Alcotest.(check (list (pair int string))) "nobody died" [] st.Farm.fs_dead;
  Alcotest.(check int) "slots conserved"
    (List.length seeds + 60)
    (st.Farm.fs_execs + st.Farm.fs_skipped + st.Farm.fs_crashes)

let test_vm_step_injected_kills_worker () =
  let st =
    Fault.with_plan
      (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 40) "vm.step" Fault.Raise ])
      (fun () -> run_farm ~workers:2 ())
  in
  Alcotest.(check int) "one worker dead" 1 (List.length st.Farm.fs_dead);
  Alcotest.(check bool) "farm degraded gracefully" true
    (st.Farm.fs_coverage <> [] && st.Farm.fs_execs > 0)

(* ---------------- shared object cache ---------------------------------- *)

let shared_src =
  {|
int f(int x) { return x * 3 + 1; }
int g(int x) { return f(x) + 7; }
int main(int x) { return g(x) + f(x); }
|}

let test_shared_cache_cross_hits () =
  let shared = Odin.Session.object_cache () in
  let mk owner =
    let m = Minic.Lower.compile shared_src in
    let s =
      Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "main" ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~objects:shared ~owner m
    in
    ignore (Odin.Cov.setup s);
    ignore (Odin.Session.build s);
    s
  in
  let s0 = mk 0 in
  Alcotest.(check int) "owner build: no cross hits" 0
    (Odin.Session.cross_hits shared);
  let s1 = mk 1 in
  Alcotest.(check bool) "second session hits the first's objects" true
    (Odin.Session.cross_hits shared > 0);
  (* both executables behave identically *)
  let run s x = Vm.call (Vm.create (Odin.Session.executable s)) "main" [ x ] in
  List.iter
    (fun x -> Alcotest.(check int64) "same behaviour" (run s0 x) (run s1 x))
    [ 0L; 5L; 41L ]

(* ---------------- structural fragment hashing -------------------------- *)

let test_shash_agrees_with_printer () =
  (* the structural digest must induce the same equality classes as the
     printed text it replaced in the cache key *)
  let variants =
    List.map Minic.Lower.compile
      [
        shared_src;
        "int main(int x) { return x + 1; }";
        "int main(int x) { return x + 2; }";
        "int main(int y) { return y + 1; }";
      ]
  in
  let ms = variants @ List.map Ir.Clone.clone_module variants in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let printed =
            Ir.Print.module_to_string a = Ir.Print.module_to_string b
          in
          let structural =
            Ir.Shash.module_digest a = Ir.Shash.module_digest b
          in
          Alcotest.(check bool) "printed and structural keys agree" printed
            structural)
        ms)
    ms

let test_shash_clone_stable () =
  let m = Workloads.Generate.compile tiny in
  Alcotest.(check bool) "clone digests equal" true
    (Ir.Shash.module_digest m = Ir.Shash.module_digest (Ir.Clone.clone_module m))

(* ---------------- store GC --------------------------------------------- *)

let with_store f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "odin-test-gc" in
  Objstore.rm_rf dir;
  Fun.protect ~finally:(fun () -> Objstore.rm_rf dir) @@ fun () ->
  f (Objstore.open_store dir)

(* pin an entry's mtime so eviction order is deterministic *)
let set_age st key ~mtime = Unix.utimes (Objstore.entry_path st key) mtime mtime

let test_gc_eviction_order () =
  with_store @@ fun st ->
  ignore (Objstore.put st "cold" (String.make 100 'a'));
  ignore (Objstore.put st "warm" (String.make 100 'b'));
  ignore (Objstore.put st "hot" (String.make 100 'c'));
  set_age st "cold" ~mtime:1000.;
  set_age st "warm" ~mtime:2000.;
  set_age st "hot" ~mtime:3000.;
  let total =
    List.fold_left (fun a (_, sz, _) -> a + sz) 0 (Objstore.scan_entries st)
  in
  let per_entry = total / 3 in
  (* budget for two entries: exactly the coldest is evicted *)
  let g = Objstore.gc ~max_bytes:(2 * per_entry) ~now:4000. st in
  Alcotest.(check int) "scanned all" 3 g.Objstore.gc_scanned;
  Alcotest.(check int) "evicted coldest" 1 g.Objstore.gc_evicted;
  Alcotest.(check int) "two live" 2 g.Objstore.gc_live;
  Alcotest.(check bool) "cold gone" true (Objstore.get st "cold" = None);
  Alcotest.(check bool) "warm kept" true (Objstore.get st "warm" <> None);
  Alcotest.(check bool) "hot kept" true (Objstore.get st "hot" <> None);
  let s = Objstore.stats st in
  Alcotest.(check int) "gc_runs" 1 s.Objstore.st_gc_runs;
  Alcotest.(check int) "st_gc_evicted" 1 s.Objstore.st_gc_evicted

let test_gc_age_bound () =
  with_store @@ fun st ->
  ignore (Objstore.put st "ancient" "x");
  ignore (Objstore.put st "recent" "y");
  set_age st "ancient" ~mtime:1000.;
  set_age st "recent" ~mtime:9000.;
  (* age bound fires regardless of any size budget *)
  let g = Objstore.gc ~max_age:100. ~now:9050. st in
  Alcotest.(check int) "expired evicted" 1 g.Objstore.gc_evicted;
  Alcotest.(check bool) "ancient gone" true (Objstore.get st "ancient" = None);
  Alcotest.(check bool) "recent kept" true (Objstore.get st "recent" <> None)

let test_gc_noop_within_budget () =
  with_store @@ fun st ->
  ignore (Objstore.put st "a" "payload");
  let g = Objstore.gc ~max_bytes:max_int ~now:0. st in
  Alcotest.(check int) "nothing evicted" 0 g.Objstore.gc_evicted;
  Alcotest.(check int) "live" 1 g.Objstore.gc_live

let test_farm_gc_under_limit () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "odin-test-farm-gc"
  in
  Objstore.rm_rf dir;
  Fun.protect ~finally:(fun () -> Objstore.rm_rf dir) @@ fun () ->
  (* a 1-byte budget forces eviction at every barrier *)
  let st =
    run_farm ~workers:2 ~execs:20 ~sync:10 ~cache_dir:dir ~cache_limit:1 ()
  in
  Alcotest.(check bool) "store GC evicted" true (st.Farm.fs_gc_evicted > 0);
  Alcotest.(check bool) "store stats surfaced" true (st.Farm.fs_store <> None)

(* ---------------- registration ----------------------------------------- *)

let () =
  Alcotest.run "farm"
    [
      ( "invariance",
        [
          Alcotest.test_case "workers 1/2/4 identical" `Slow
            test_invariance_across_workers;
          Alcotest.test_case "no-prune identical" `Slow test_invariance_no_prune;
          Alcotest.test_case "repeat determinism" `Slow test_repeat_determinism;
          Alcotest.test_case "on a real domain pool" `Slow
            test_invariance_on_domains;
        ] );
      ( "csync",
        [
          Alcotest.test_case "dedup + stale + accept" `Quick test_csync_dedup;
          Alcotest.test_case "dedup across rounds" `Quick
            test_csync_dedup_across_rounds;
          Alcotest.test_case "pid bounds" `Quick test_csync_bounds;
        ] );
      ( "votes",
        [
          Alcotest.test_case "tally, quorum, merge" `Quick test_votes;
          Alcotest.test_case "weighted tally + decay" `Quick
            test_weighted_votes;
          Alcotest.test_case "weighted merge_round quorum" `Quick
            test_merge_round_weighted;
        ] );
      ( "adaptive sync",
        [
          Alcotest.test_case "quiet barriers scale interval" `Quick
            test_adaptive_interval;
          Alcotest.test_case "farm end to end" `Slow
            test_adaptive_farm_end_to_end;
        ] );
      ( "energy",
        [
          Alcotest.test_case "seed_energy shape" `Quick test_seed_energy;
          Alcotest.test_case "energy drives pick" `Quick test_energy_drives_pick;
        ] );
      ( "faults",
        [
          Alcotest.test_case "worker death at sync barrier" `Slow
            test_worker_death_at_sync;
          Alcotest.test_case "all workers die" `Quick test_all_workers_die;
          Alcotest.test_case "vm.step transient skips one exec" `Quick
            test_vm_step_transient_skips;
          Alcotest.test_case "vm.step raise kills worker" `Quick
            test_vm_step_injected_kills_worker;
        ] );
      ( "shared-cache",
        [
          Alcotest.test_case "cross-session hits" `Quick
            test_shared_cache_cross_hits;
        ] );
      ( "shash",
        [
          Alcotest.test_case "agrees with printer" `Quick
            test_shash_agrees_with_printer;
          Alcotest.test_case "clone stable" `Quick test_shash_clone_stable;
        ] );
      ( "store-gc",
        [
          Alcotest.test_case "coldest-first eviction" `Quick
            test_gc_eviction_order;
          Alcotest.test_case "age bound" `Quick test_gc_age_bound;
          Alcotest.test_case "no-op within budget" `Quick
            test_gc_noop_within_budget;
          Alcotest.test_case "farm with shared store" `Quick
            test_farm_gc_under_limit;
        ] );
    ]
