(* The incremental linker.

   Units pin down the mechanism with hand-built objects: slab
   allocation and growth padding, address stability for unchanged
   objects, the reverse relocation index (an unchanged object's slot is
   patched when its target moves), every fallback trigger, diagnostics
   parity with the full path, and torn-patch detection.

   The equivalence suite is the tentpole invariant end to end: a
   200-toggle probe storm over a session must produce bit-identical
   executable images, VM traces and outcomes whether linking is
   incremental or full, at every pool size. *)

module Incr = Link.Incremental
module L = Link.Linker
module Objfile = Link.Objfile
module Fault = Support.Fault
module Pool = Support.Pool

(* ---------------- hand-built objects ---------------- *)

(* One trivial compiled function, reused as the body of every hand-built
   code symbol: the linker treats [mfunc] as an opaque payload, so the
   tests only care about symbol shape, not code content. *)
let an_mfunc =
  lazy
    (let m = Minic.Lower.compile "int one(int x) { return x; }" in
     let obj = Objfile.of_module m in
     match
       List.find_map
         (fun (s : Objfile.sym) ->
           match s.Objfile.s_def with
           | Objfile.Code mf -> Some mf
           | Objfile.Data _ -> None)
         obj.Objfile.o_syms
     with
     | Some mf -> mf
     | None -> Alcotest.fail "no code symbol in probe module")

let code ?(global = true) name =
  {
    Objfile.s_name = name;
    s_global = global;
    s_def = Objfile.Code (Lazy.force an_mfunc);
    s_comdat = None;
  }

let data ?(global = true) ?(relocs = []) ?(size = 8) name =
  {
    Objfile.s_name = name;
    s_global = global;
    s_def =
      Objfile.Data
        {
          Objfile.d_bytes = Bytes.make size '\x00';
          d_relocs = relocs;
          d_const = false;
        };
    s_comdat = None;
  }

let obj ?(aliases = []) ?(undef = []) name syms =
  { Objfile.o_name = name; o_syms = syms; o_aliases = aliases; o_undefined = undef }

let addr exe name = L.addr_of exe name

(* Normalized view of an exe for bit-identity checks. *)
let exe_obs (exe : L.exe) =
  let img =
    List.sort compare
      (List.map (fun (b, by) -> (b, Bytes.to_string by)) exe.L.image)
  in
  let syms =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) exe.L.sym_addr []
    |> List.sort compare
  in
  (img, syms, exe.L.data_end)

let image_slot exe base =
  match List.assoc_opt base exe.L.image with
  | Some bytes -> Bytes.get_int64_le bytes 0
  | None -> Alcotest.failf "no image entry at %#x" base

(* ---------------- units: capacity policy ---------------- *)

let test_capacity_policy () =
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (Printf.sprintf "code cap %d" n) want
        (Incr.code_capacity n))
    [ (0, 0); (1, 4); (3, 4); (4, 4); (5, 8); (9, 16) ];
  List.iter
    (fun (n, want) ->
      Alcotest.(check int) (Printf.sprintf "data cap %d" n) want
        (Incr.data_capacity n))
    [ (0, 0); (1, 64); (64, 64); (65, 128); (200, 256) ]

(* ---------------- units: slabs + address stability ---------------- *)

(* A: two functions and a table; B: one function plus a data slot
   holding a1's address (an inbound reference A's moves must patch). *)
let objs_v1 () =
  [
    obj "A" [ code "a1"; code ~global:false "a2"; data "atab" ];
    obj "B" [ code "b1"; data ~relocs:[ (0, "a1") ] "btab" ];
  ]

let test_slab_layout_and_stability () =
  let t = Incr.create () in
  let e1 = Incr.relink t ~changed:[] (objs_v1 ()) in
  Alcotest.(check bool) "first link is full" false (Incr.last t).Incr.ls_incremental;
  let slabs = Incr.slabs t in
  Alcotest.(check (list string)) "slab per object" [ "A"; "B" ]
    (List.map (fun s -> s.Incr.si_obj) slabs);
  let sa = List.hd slabs and sb = List.nth slabs 1 in
  Alcotest.(check int) "A code cap padded" 4 sa.Incr.si_code_cap;
  Alcotest.(check int) "A data cap padded" 64 sa.Incr.si_data_cap;
  Alcotest.(check int) "B after A's full slab"
    (sa.Incr.si_code_base + (16 * 4))
    sb.Incr.si_code_base;
  (* change A's contents without changing its shape: the patch path
     serves it and every address is stable *)
  let a1 = addr e1 "a1" and b1 = addr e1 "b1" and bt = addr e1 "btab" in
  let e2 = Incr.relink t ~changed:[ "A" ] (objs_v1 ()) in
  Alcotest.(check bool) "patched" true (Incr.last t).Incr.ls_incremental;
  Alcotest.(check int) "one incremental relink" 1 (Incr.stats t).Incr.st_incremental;
  List.iter
    (fun (name, old) ->
      Alcotest.(check int64) (name ^ " stable") old (addr e2 name))
    [ ("a1", a1); ("b1", b1); ("btab", bt) ];
  (* and the patched exe is bit-identical to a from-scratch slab link *)
  let fresh = Incr.relink (Incr.create ()) ~changed:[] (objs_v1 ()) in
  Alcotest.(check bool) "image identical to fresh full link" true
    (exe_obs e2 = exe_obs fresh)

let test_growth_within_slab_and_reverse_index () =
  let t = Incr.create () in
  let e1 = Incr.relink t ~changed:[] (objs_v1 ()) in
  let a1_old = addr e1 "a1" in
  let b_data = (List.nth (Incr.slabs t) 1).Incr.si_data_base in
  Alcotest.(check int64) "B.btab holds a1's address" a1_old
    (image_slot e1 b_data);
  (* grow A inside its padding: an internal symbol lands in front, so
     a1 moves one slot — still incremental *)
  let objs2 =
    [
      obj "A" [ code ~global:false "a0"; code "a1"; code ~global:false "a2"; data "atab" ];
      obj "B" [ code "b1"; data ~relocs:[ (0, "a1") ] "btab" ];
    ]
  in
  let e2 = Incr.relink t ~changed:[ "A" ] objs2 in
  Alcotest.(check bool) "still incremental" true (Incr.last t).Incr.ls_incremental;
  let a1_new = addr e2 "a1" in
  Alcotest.(check int64) "a1 moved one slot" (Int64.add a1_old 16L) a1_new;
  (* the reverse relocation index patched unchanged B's slot in place *)
  Alcotest.(check int64) "B.btab re-pointed at moved a1" a1_new
    (image_slot e2 b_data);
  Alcotest.(check bool) "inbound slot patched" true
    ((Incr.last t).Incr.ls_relocs_patched >= 1);
  (* the committed exe of the previous link was never mutated *)
  Alcotest.(check int64) "old exe image untouched" a1_old (image_slot e1 b_data);
  (* equivalent to linking objs2 from scratch *)
  let fresh = Incr.relink (Incr.create ()) ~changed:[] objs2 in
  Alcotest.(check bool) "identical to fresh full link" true
    (exe_obs e2 = exe_obs fresh)

let test_fallback_triggers () =
  let base_stats t = ((Incr.stats t).Incr.st_full, (Incr.stats t).Incr.st_fallbacks) in
  let check_falls_back what objs2 =
    let t = Incr.create () in
    ignore (Incr.relink t ~changed:[] (objs_v1 ()));
    let full0, fb0 = base_stats t in
    let e = Incr.relink t ~changed:[ "A" ] objs2 in
    let full1, fb1 = base_stats t in
    Alcotest.(check bool) (what ^ ": fell back") true
      (full1 = full0 + 1 && fb1 = fb0 + 1);
    Alcotest.(check bool) (what ^ ": served full") false
      (Incr.last t).Incr.ls_incremental;
    (* a fallback is still a correct link *)
    let fresh = Incr.relink (Incr.create ()) ~changed:[] objs2 in
    Alcotest.(check bool) (what ^ ": identical to fresh") true
      (exe_obs e = exe_obs fresh)
  in
  (* slab overflow: 5 code symbols > capacity 4 *)
  check_falls_back "code overflow"
    [
      obj "A"
        [
          code "a1";
          code ~global:false "a2";
          code ~global:false "x1";
          code ~global:false "x2";
          code ~global:false "x3";
        ];
      obj "B" [ code "b1"; data ~relocs:[ (0, "a1") ] "btab" ];
    ];
  (* data overflow: past the 64-byte data slab *)
  check_falls_back "data overflow"
    [
      obj "A" [ code "a1"; code ~global:false "a2"; data ~size:80 "atab" ];
      obj "B" [ code "b1"; data ~relocs:[ (0, "a1") ] "btab" ];
    ];
  (* exported symbol set changed: a2 goes global *)
  check_falls_back "export change"
    [
      obj "A" [ code "a1"; code "a2"; data "atab" ];
      obj "B" [ code "b1"; data ~relocs:[ (0, "a1") ] "btab" ];
    ];
  (* changed object list (new object) must relink fully *)
  let t = Incr.create () in
  ignore (Incr.relink t ~changed:[] (objs_v1 ()));
  let objs3 = objs_v1 () @ [ obj "C" [ code "c1" ] ] in
  ignore (Incr.relink t ~changed:[ "C" ] objs3);
  Alcotest.(check bool) "object-list change is full" false
    (Incr.last t).Incr.ls_incremental;
  (* incremental:false forces the full path even with clean state *)
  let t = Incr.create () in
  ignore (Incr.relink t ~changed:[] (objs_v1 ()));
  ignore (Incr.relink ~incremental:false t ~changed:[ "A" ] (objs_v1 ()));
  Alcotest.(check bool) "flag off is full" false (Incr.last t).Incr.ls_incremental

let test_cost_model () =
  let t = Incr.create () in
  ignore (Incr.relink t ~changed:[] (objs_v1 ()));
  let full = Incr.last t in
  Alcotest.(check int) "full cost matches Linker model"
    (2000 + (40 * full.Incr.ls_resolved))
    full.Incr.ls_cost;
  ignore (Incr.relink t ~changed:[ "A" ] (objs_v1 ()));
  let inc = Incr.last t in
  Alcotest.(check int) "patch cost charges work done"
    (200 + (40 * (inc.Incr.ls_symbols_patched + inc.Incr.ls_relocs_patched)))
    inc.Incr.ls_cost;
  Alcotest.(check bool) "patch is cheaper" true (inc.Incr.ls_cost < full.Incr.ls_cost)

(* ---------------- units: diagnostics parity ---------------- *)

let message_of f =
  try
    ignore (f ());
    None
  with e -> L.link_error_message e

let test_diagnostics_match_full_linker () =
  (* duplicate symbol, fresh link *)
  let dup = [ obj "A" [ code "f" ]; obj "B" [ code "f" ] ] in
  Alcotest.(check (option string))
    "duplicate: same diagnostic"
    (message_of (fun () -> L.link dup))
    (message_of (fun () -> Incr.relink (Incr.create ()) ~changed:[] dup));
  (* undefined symbol, fresh link *)
  let undef = [ obj "A" [ code "f" ]; obj ~undef:[ "missing" ] "B" [ code "g" ] ] in
  Alcotest.(check (option string))
    "undefined: same diagnostic"
    (message_of (fun () -> L.link undef))
    (message_of (fun () -> Incr.relink (Incr.create ()) ~changed:[] undef));
  (* a changed object introducing an unresolvable reference: the patch
     path must fall back and raise the canonical diagnostic *)
  let t = Incr.create () in
  ignore (Incr.relink t ~changed:[] (objs_v1 ()));
  let objs2 =
    [
      obj "A" [ code "a1"; code ~global:false "a2"; data "atab" ];
      obj ~undef:[ "missing" ] "B" [ code "b1"; data ~relocs:[ (0, "a1") ] "btab" ];
    ]
  in
  Alcotest.(check (option string))
    "undefined after change: same diagnostic"
    (message_of (fun () -> L.link objs2))
    (message_of (fun () -> Incr.relink t ~changed:[ "B" ] objs2));
  Alcotest.(check bool) "counted as fallback" true
    ((Incr.stats t).Incr.st_fallbacks >= 1)

(* ---------------- units: torn-patch detection ---------------- *)

let test_torn_patch_detected () =
  let t = Incr.create () in
  ignore (Incr.relink t ~changed:[] (objs_v1 ()));
  let before = exe_obs (Incr.relink t ~changed:[] (objs_v1 ())) in
  let msg =
    try
      Fault.with_plan
        (Fault.plan ~seed:1 [ Fault.rule "link.patch" Fault.Torn ])
        (fun () -> ignore (Incr.relink t ~changed:[ "A" ] (objs_v1 ())));
      None
    with L.Link_error m -> Some m
  in
  (match msg with
  | Some m ->
    Alcotest.(check bool) "names the torn patch" true
      (String.length m >= 19 && String.sub m 0 19 = "torn patch detected")
  | None -> Alcotest.fail "torn patch was not detected");
  (* the failed patch never committed: the old exe still serves and a
     clean retry succeeds with identical output *)
  let retry = Incr.relink t ~changed:[ "A" ] (objs_v1 ()) in
  Alcotest.(check bool) "clean retry patches" true (Incr.last t).Incr.ls_incremental;
  Alcotest.(check bool) "retry identical to pre-fault state" true
    (exe_obs retry = before)

(* ---------------- equivalence: 200-toggle storm ---------------- *)

let storm_src =
  {|
static int f0(int x) { if (x > 3) return x * 2; return x + 1; }
static int f1(int x) { int a = 0; for (int i = 0; i < 3; i++) a = a + f0(x + i); return a; }
static int f2(int x) { if ((x & 1) == 0) return f1(x); return f1(x + 1); }
static int f3(int x) { return f2(x) + f0(x); }
static int f4(int x) { int a = 0; while (x > 0) { a = a + f3(x); x = x - 7; } return a; }
int main(int x) { return f4(x) + f2(x + 5); }
|}

let storm_inputs = [ 0L; 1L; 5L; 17L; 50L ]

let mk_storm_session ~incremental ~pool () =
  let m = Minic.Lower.compile storm_src in
  let session =
    Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      ~pool ~incremental_link:incremental m
  in
  ignore (Odin.Cov.setup session);
  ignore (Odin.Session.build session);
  session

(* (exe image + symbol table, per-input return/cycle trace) after the
   current refresh: everything the VM can observe. *)
let observe session =
  let exe = Odin.Session.executable session in
  let trace =
    List.map
      (fun x ->
        let vm = Vm.create exe in
        let ret = Vm.call vm "main" [ x ] in
        (ret, vm.Vm.cycles))
      storm_inputs
  in
  (exe_obs exe, trace)

(* Deterministic LCG so the storm replays identically everywhere. *)
let lcg seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

let run_storm ~rounds ~pool =
  let inc = mk_storm_session ~incremental:true ~pool () in
  let full = mk_storm_session ~incremental:false ~pool () in
  let rand = lcg 20240806 in
  let states = ref [ (observe inc, observe full) ] in
  for _ = 1 to rounds do
    (* toggle a pseudo-random subset of probes, same on both sessions *)
    let choices = ref [] in
    Instr.Manager.iter
      (fun p -> choices := (p.Instr.Probe.pid, rand () mod 3 = 0) :: !choices)
      inc.Odin.Session.manager;
    let apply session =
      Instr.Manager.iter
        (fun p ->
          match List.assoc_opt p.Instr.Probe.pid !choices with
          | Some true ->
            Instr.Manager.set_enabled session.Odin.Session.manager p
              (not p.Instr.Probe.enabled)
          | _ -> ())
        session.Odin.Session.manager
    in
    apply inc;
    apply full;
    (match (Odin.Session.try_refresh inc, Odin.Session.try_refresh full) with
    | Some Odin.Session.Ok, Some Odin.Session.Ok -> ()
    | None, None -> ()
    | a, b ->
      let s = function
        | None -> "None"
        | Some Odin.Session.Ok -> "Ok"
        | Some (Odin.Session.Degraded _) -> "Degraded"
        | Some (Odin.Session.Rolled_back _) -> "Rolled_back"
      in
      Alcotest.failf "outcomes diverged: incremental %s vs full %s" (s a) (s b));
    states := (observe inc, observe full) :: !states
  done;
  (* the storm must actually exercise the patch path *)
  let st = Incr.stats inc.Odin.Session.linker in
  Alcotest.(check bool)
    (Printf.sprintf "patch path used (%d/%d)" st.Incr.st_incremental rounds)
    true
    (st.Incr.st_incremental > rounds / 2);
  Alcotest.(check int) "full session never patched" 0
    (Incr.stats full.Odin.Session.linker).Incr.st_incremental;
  List.rev !states

let test_storm_equivalence () =
  let per_size =
    List.map
      (fun size ->
        let pool = if size = 1 then Pool.serial else Pool.create ~size () in
        Fun.protect ~finally:(fun () -> if size > 1 then Pool.shutdown pool)
        @@ fun () ->
        let states = run_storm ~rounds:200 ~pool in
        List.iteri
          (fun i (inc_obs, full_obs) ->
            if inc_obs <> full_obs then
              Alcotest.failf "jobs %d, round %d: incremental != full" size i)
          states;
        states)
      [ 1; 2; 4 ]
  in
  match per_size with
  | s1 :: rest ->
    List.iteri
      (fun i s ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs 1 vs %d identical" (List.nth [ 2; 4 ] i))
          true (s = s1))
      rest
  | [] -> assert false

let () =
  Alcotest.run "relink"
    [
      ( "slabs",
        [
          Alcotest.test_case "capacity policy" `Quick test_capacity_policy;
          Alcotest.test_case "layout + address stability" `Quick
            test_slab_layout_and_stability;
          Alcotest.test_case "growth + reverse reloc index" `Quick
            test_growth_within_slab_and_reverse_index;
          Alcotest.test_case "fallback triggers" `Quick test_fallback_triggers;
          Alcotest.test_case "cost model" `Quick test_cost_model;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "parity with full linker" `Quick
            test_diagnostics_match_full_linker;
          Alcotest.test_case "torn patch detected" `Quick test_torn_patch_detected;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "200-toggle storm, jobs 1/2/4" `Slow
            test_storm_equivalence;
        ] );
    ]
