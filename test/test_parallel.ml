(* Parallel recompilation and the content-addressed object cache.

   The correctness bar for the domain pool is bit-identity: whatever the
   pool size, a session must produce the same per-fragment objects and
   the same VM behaviour. The cache tests pin down the campaign-facing
   contract: toggling a probe set off and on again relinks cached
   objects instead of recompiling (0 fragments compiled the second
   time), the LRU bound evicts, and changing [opt_rounds] invalidates. *)

module Pool = Support.Pool

let target_src =
  {|
static int f0(int x) { if (x > 3) return x * 2; return x + 1; }
static int f1(int x) { int a = 0; for (int i = 0; i < 3; i++) a = a + f0(x + i); return a; }
static int f2(int x) { if ((x & 1) == 0) return f1(x); return f1(x + 1); }
static int f3(int x) { return f2(x) + f0(x); }
int main(int x) { return f3(x) + f2(x + 5); }
|}

let compile = Minic.Lower.compile

(* Max partition: one fragment per function, so every rebuild is a
   genuinely multi-fragment batch. *)
let make_session ?(pool = Pool.serial) ?cache_size ?opt_rounds
    ?incremental_sched () =
  let m = compile target_src in
  let session =
    Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      ~pool ?cache_size ?opt_rounds ?incremental_sched m
  in
  let cov = Odin.Cov.setup session in
  ignore (Odin.Session.build session);
  (session, cov)

let toggle_all session enabled =
  Instr.Manager.iter
    (fun p -> Instr.Manager.set_enabled session.Odin.Session.manager p enabled)
    session.Odin.Session.manager

(* Per-fragment machine-code fingerprints: Objfile.t is pure data, so a
   digest of its marshalled bytes is a faithful bit-identity check. *)
let fingerprint session =
  Hashtbl.fold
    (fun fid obj acc -> (fid, Digest.string (Marshal.to_string obj [])) :: acc)
    session.Odin.Session.cache []
  |> List.sort compare

let run_main session x =
  let vm = Vm.create (Odin.Session.executable session) in
  let ret = Vm.call vm "main" [ Int64.of_int x ] in
  (ret, vm.Vm.cycles)

let probe_inputs = [ 0; 1; 5; 50 ]

let counter_value session name =
  Telemetry.Metrics.value
    (Telemetry.Metrics.counter
       session.Odin.Session.telemetry.Telemetry.Recorder.metrics name)

(* ---------------- bit-identity across pool sizes ---------------- *)

let build_observation size =
  let pool = if size = 1 then Pool.serial else Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let session, cov = make_session ~pool () in
  (* a refresh with a partial probe set exercises the incremental path
     under the pool too *)
  Instr.Manager.iter
    (fun p ->
      if p.Instr.Probe.pid mod 2 = 0 then
        Instr.Manager.set_enabled session.Odin.Session.manager p false)
    session.Odin.Session.manager;
  ignore (Odin.Session.refresh session);
  ignore cov;
  (fingerprint session, List.map (run_main session) probe_inputs)

let test_bit_identical_across_pool_sizes () =
  let fp1, res1 = build_observation 1 in
  List.iter
    (fun size ->
      let fp, res = build_observation size in
      Alcotest.(check bool)
        (Printf.sprintf "objects identical at %d jobs" size)
        true (fp = fp1);
      List.iter2
        (fun (r1, c1) (r, c) ->
          Alcotest.(check int64) "same result" r1 r;
          Alcotest.(check int) "same cycles" c1 c)
        res1 res)
    [ 2; 8 ]

let test_parallel_refresh_correct () =
  (* behaviour after a parallel refresh matches a fresh serial session *)
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let par, _ = make_session ~pool () in
  toggle_all par false;
  ignore (Odin.Session.refresh par);
  toggle_all par true;
  ignore (Odin.Session.refresh par);
  let serial, _ = make_session () in
  List.iter
    (fun x ->
      let rp, cp = run_main par x and rs, cs = run_main serial x in
      Alcotest.(check int64) "same result" rs rp;
      Alcotest.(check int) "same cycles" cs cp)
    probe_inputs

(* ---------------- content-addressed cache ---------------- *)

let test_cache_hit_on_toggle_round_trip () =
  let session, _ = make_session () in
  toggle_all session false;
  let ev_off = Option.get (Odin.Session.refresh session) in
  Alcotest.(check bool) "multi-fragment schedule" true
    (List.length ev_off.Odin.Session.ev_fragments >= 2);
  toggle_all session true;
  let ev_on = Option.get (Odin.Session.refresh session) in
  (* re-enabling reproduces the initial build's instrumented IR exactly,
     so every scheduled fragment is a cache hit: 0 compiled *)
  Alcotest.(check int) "all fragments hit"
    (List.length ev_on.Odin.Session.ev_fragments)
    ev_on.Odin.Session.ev_cache_hits;
  (* ... and a second round-trip hits the disabled variants too *)
  toggle_all session false;
  let ev_off2 = Option.get (Odin.Session.refresh session) in
  Alcotest.(check int) "disabled variants hit"
    (List.length ev_off2.Odin.Session.ev_fragments)
    ev_off2.Odin.Session.ev_cache_hits;
  Alcotest.(check bool) "hit counter > 0" true
    (counter_value session "session.fragment_cache_hits" > 0);
  (* cached objects must behave identically to freshly compiled ones *)
  toggle_all session true;
  ignore (Odin.Session.refresh session);
  let fresh, _ = make_session () in
  List.iter
    (fun x ->
      let rc, cc = run_main session x and rf, cf = run_main fresh x in
      Alcotest.(check int64) "same result" rf rc;
      Alcotest.(check int) "same cycles" cf cc)
    probe_inputs

let test_lru_eviction () =
  (* capacity 1 with a multi-fragment batch: every rebuild thrashes, so
     the round trip gets no hits and the eviction counter moves. The
     session-level Shash memo is off — it would serve the round trip
     without ever touching the LRU under test *)
  let session, _ = make_session ~cache_size:1 ~incremental_sched:false () in
  toggle_all session false;
  ignore (Odin.Session.refresh session);
  toggle_all session true;
  let ev_on = Option.get (Odin.Session.refresh session) in
  Alcotest.(check int) "no hits under thrash" 0 ev_on.Odin.Session.ev_cache_hits;
  Alcotest.(check bool) "evictions counted" true
    (counter_value session "session.fragment_cache_evictions" > 0);
  (* thrashing is a performance mode, never a correctness one *)
  let fresh, _ = make_session () in
  List.iter
    (fun x ->
      let rc, _ = run_main session x and rf, _ = run_main fresh x in
      Alcotest.(check int64) "same result" rf rc)
    probe_inputs

let test_opt_rounds_invalidates_cache () =
  let session, _ = make_session () in
  (* sanity: with unchanged config the round trip is all hits *)
  toggle_all session false;
  ignore (Odin.Session.refresh session);
  toggle_all session true;
  let ev_warm = Option.get (Odin.Session.refresh session) in
  Alcotest.(check bool) "warm hits first" true
    (ev_warm.Odin.Session.ev_cache_hits > 0);
  (* changing the opt bound changes the cache key: no stale reuse *)
  Odin.Session.set_opt_rounds session 1;
  toggle_all session false;
  let ev3 = Option.get (Odin.Session.refresh session) in
  Alcotest.(check int) "cold after rounds change" 0
    ev3.Odin.Session.ev_cache_hits;
  toggle_all session true;
  let ev4 = Option.get (Odin.Session.refresh session) in
  Alcotest.(check int) "enabled variant also cold" 0
    ev4.Odin.Session.ev_cache_hits

(* ---------------- compile-stage re-entrancy ---------------- *)

let test_concurrent_compile_identical_code () =
  (* the same fragment compiled concurrently from every pool slot must
     yield identical machine code — the audit's no-hidden-shared-state
     guarantee, asserted end to end *)
  let m = compile target_src in
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let compile_once _ =
    let clone = Ir.Clone.clone_module m in
    ignore (Opt.Pipeline.run_fragment ~max_rounds:2 clone);
    Digest.string (Marshal.to_string (Link.Objfile.of_module clone) [])
  in
  match Pool.map pool compile_once (List.init 8 Fun.id) with
  | [] -> Alcotest.fail "no results"
  | d0 :: rest ->
    List.iteri
      (fun i d ->
        Alcotest.(check string)
          (Printf.sprintf "copy %d identical" (i + 1))
          d0 d)
      rest

(* ---------------- pool semantics ---------------- *)

let test_pool_map_order_and_exceptions () =
  let pool = Pool.create ~size:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun x -> x * 2) xs)
    (Pool.map pool (fun x -> x * 2) xs);
  Alcotest.(check bool) "first exception propagates" true
    (try
       ignore (Pool.map pool (fun x -> if x >= 5 then failwith "boom" else x) xs);
       false
     with Failure msg -> msg = "boom");
  (* the pool survives a failed batch *)
  Alcotest.(check (list int)) "usable after failure" [ 2; 4 ]
    (Pool.map pool (fun x -> x * 2) [ 1; 2 ])

let test_pool_serial_and_env () =
  Alcotest.(check int) "serial size" 1 (Pool.size Pool.serial);
  Alcotest.(check (list int))
    "serial map inline" [ 1; 4; 9 ]
    (Pool.map Pool.serial (fun x -> x * x) [ 1; 2; 3 ])

(* Regression: a raising job must not abandon its batch — every sibling
   job still runs to completion (drain/join barrier) before the
   exception propagates, and the pool stays usable. The old
   implementation could leave outstanding jobs running (or queued) when
   the caller re-raised early, leaking work into the next batch. *)
let test_pool_exception_joins_all_jobs () =
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let started = Atomic.make 0 in
  let finished = Atomic.make 0 in
  (for _ = 1 to 5 do
     Atomic.set started 0;
     Atomic.set finished 0;
     match
       Pool.map pool
         (fun i ->
           Atomic.incr started;
           if i = 3 then failwith "boom";
           (* stagger siblings so some are still mid-flight when the
              failing job raises *)
           ignore (Sys.opaque_identity (Hashtbl.hash i));
           Atomic.incr finished;
           i)
         (List.init 8 Fun.id)
     with
     | _ -> Alcotest.fail "batch with failing job returned"
     | exception Failure msg ->
       Alcotest.(check string) "right exception" "boom" msg;
       (* join barrier: every job ran exactly once, 7 finished *)
       Alcotest.(check int) "all jobs started" 8 (Atomic.get started);
       Alcotest.(check int) "siblings completed" 7 (Atomic.get finished)
   done);
  (* no leaked jobs: the next batch sees only its own work *)
  Alcotest.(check (list int))
    "pool clean after failures" [ 0; 10; 20 ]
    (Pool.map pool (fun x -> x * 10) [ 0; 1; 2 ])

(* ---------------- span ring buffer ---------------- *)

let test_span_ring_buffer () =
  let r = Telemetry.Recorder.create ~span_limit:8 () in
  let spans = r.Telemetry.Recorder.spans in
  Telemetry.Recorder.with_span r "root" (fun () ->
      for _ = 1 to 100 do
        Telemetry.Recorder.with_span r "child" (fun () ->
            Telemetry.Recorder.count (Some r) "execs")
      done);
  let root = List.hd (Telemetry.Span.roots spans) in
  let kept = List.length (Telemetry.Span.children root) in
  Alcotest.(check bool) "bounded" true (kept < 16);
  Alcotest.(check int) "kept + dropped = total" 100
    (kept + Telemetry.Span.dropped_children root);
  (* counters stay exact while spans are sampled *)
  Alcotest.(check int) "counter exact" 100
    (Telemetry.Metrics.value
       (Telemetry.Metrics.counter r.Telemetry.Recorder.metrics "execs"))

(* ---------------- recorder fork / merge ---------------- *)

let test_recorder_fork_merge () =
  let r =
    Telemetry.Recorder.create
      ~clock:(Telemetry.Clock.virtual_clock ~step:1.0 ())
      ()
  in
  let parent = Telemetry.Span.enter r.Telemetry.Recorder.spans "join" in
  let forks =
    List.map
      (fun i ->
        let f = Telemetry.Recorder.fork r in
        Telemetry.Recorder.with_span f
          (Printf.sprintf "job%d" i)
          (fun () -> Telemetry.Recorder.count (Some f) ~by:(i + 1) "work");
        Telemetry.Recorder.observe (Some f) "ms" (float_of_int i);
        f)
      [ 0; 1; 2 ]
  in
  List.iter
    (fun f -> Telemetry.Recorder.merge ~into:r ~parent f)
    forks;
  Telemetry.Span.exit r.Telemetry.Recorder.spans parent;
  Alcotest.(check int) "counter summed" 6
    (Telemetry.Metrics.value
       (Telemetry.Metrics.counter r.Telemetry.Recorder.metrics "work"));
  Alcotest.(check int) "histogram merged" 3
    (Telemetry.Histogram.count
       (Telemetry.Metrics.histogram r.Telemetry.Recorder.metrics "ms"));
  Alcotest.(check (list string))
    "adopted in join order" [ "job0"; "job1"; "job2" ]
    (List.map Telemetry.Span.name (Telemetry.Span.children parent))

(* ---------------- CSV export ---------------- *)

let test_csv_export () =
  let r =
    Telemetry.Recorder.create
      ~clock:(Telemetry.Clock.virtual_clock ~step:1.0 ())
      ()
  in
  let m = r.Telemetry.Recorder.metrics in
  let cov = Telemetry.Metrics.counter m ~series:true "cov" in
  Telemetry.Metrics.incr cov;
  Telemetry.Metrics.incr cov;
  List.iter (Telemetry.Metrics.observe m "cycles") [ 3.; 5.; 100. ];
  let doc = Telemetry.Csv.render ~extra_rows:[ Telemetry.Csv.row [ "recompile"; "x,y"; "0"; "1" ] ] r in
  let has line = List.mem line (String.split_on_char '\n' doc) in
  Alcotest.(check bool) "header" true (has "kind,name,x,value");
  Alcotest.(check bool) "counter row" true (has "counter,cov,,2");
  Alcotest.(check bool) "series rows" true (has "series,cov,1.000000,2");
  Alcotest.(check bool) "bucket 2 (for 3.)" true (has "histogram,cycles,2.000000,1");
  Alcotest.(check bool) "bucket 4 (for 5.)" true (has "histogram,cycles,4.000000,1");
  Alcotest.(check bool) "bucket 64 (for 100.)" true (has "histogram,cycles,64.000000,1");
  Alcotest.(check bool) "summary count" true (has "summary,cycles,count,3");
  Alcotest.(check bool) "quoted extra row" true (has "recompile,\"x,y\",0,1")

let () =
  Alcotest.run "parallel"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "pool sizes 1/2/8" `Slow
            test_bit_identical_across_pool_sizes;
          Alcotest.test_case "parallel refresh correct" `Quick
            test_parallel_refresh_correct;
        ] );
      ( "object-cache",
        [
          Alcotest.test_case "toggle round trip hits" `Quick
            test_cache_hit_on_toggle_round_trip;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "opt_rounds invalidates" `Quick
            test_opt_rounds_invalidates_cache;
        ] );
      ( "re-entrancy",
        [
          Alcotest.test_case "concurrent compile identical" `Quick
            test_concurrent_compile_identical_code;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order + exceptions" `Quick
            test_pool_map_order_and_exceptions;
          Alcotest.test_case "serial" `Quick test_pool_serial_and_env;
          Alcotest.test_case "exception joins all jobs" `Quick
            test_pool_exception_joins_all_jobs;
        ] );
      ( "telemetry-concurrency",
        [
          Alcotest.test_case "span ring buffer" `Quick test_span_ring_buffer;
          Alcotest.test_case "fork/merge" `Quick test_recorder_fork_merge;
          Alcotest.test_case "csv export" `Quick test_csv_export;
        ] );
    ]
