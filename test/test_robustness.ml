(* Robustness and edge-case suite, cutting across all layers: IR corner
   cases, frontend torture inputs, codegen stress (spilling, deep
   recursion, big switches), linker edge cases, Odin lifecycle edges, and
   cross-layer differential properties. *)

let parse = Ir.Parse.module_of_string
let compile = Minic.Lower.compile

let interp m fname args =
  let st = Ir.Interp.create m in
  Ir.Interp.run st fname args

let vm_of_module ?(host = []) m =
  let obj = Link.Objfile.of_module m in
  let exe = Link.Linker.link ~host [ obj ] in
  Vm.create exe

(* ---------------- IR printer/parser edges ---------------- *)

let test_print_escapes_roundtrip () =
  let m = Ir.Modul.create () in
  let data = "\x00\x01\"quote\\back\xFF\n" in
  ignore (Ir.Modul.add_var m ~const:true ~name:"blob" (Ir.Modul.Bytes data));
  let text = Ir.Print.module_to_string m in
  let m2 = parse text in
  match Ir.Modul.find_var m2 "blob" with
  | Some { Ir.Modul.ginit = Ir.Modul.Bytes got; _ } ->
    Alcotest.(check string) "bytes round-trip" data got
  | _ -> Alcotest.fail "blob missing"

let test_parse_negative_and_large_constants () =
  let m =
    parse
      {|
define external @f() i64 {
entry:
  %a = add i64 -9223372036854775807, -1
  ret i64 %a
}
|}
  in
  Alcotest.(check int64) "wraps to min_int" Int64.min_int (interp m "f" [])

let test_parse_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (parse "define external @f() i32 {\nentry:\n  %x = frobnicate 1\n}");
       false
     with Ir.Parse.Parse_error _ -> true)

let test_verify_phi_type_mismatch () =
  let m =
    parse
      {|
define external @f(i32 %x) i32 {
entry:
  br label %next
next:
  %p = phi i32 [ 1, %entry ]
  ret i32 %p
}
|}
  in
  (* well-typed phi passes *)
  Alcotest.(check int) "ok" 0 (List.length (Ir.Verify.check_module m));
  (* break it: retype an arm *)
  let f = Option.get (Ir.Modul.find_func m "f") in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with
      | Ir.Ins.Phi _ -> i.Ir.Ins.kind <- Ir.Ins.Phi [ ("entry", Ir.Ins.Reg (Ir.Types.I64, "x")) ]
      | _ -> ())
    f;
  Alcotest.(check bool) "type mismatch caught" true (Ir.Verify.check_module m <> [])

let test_interp_ptr_arithmetic_via_gep () =
  let src =
    {|
@tbl = internal constant [i16 x 10, 20, 30, 40]
define external @f(i64 %i) i16 {
entry:
  %p = gep ptr @tbl, i64 %i, size 2
  %v = load i16, ptr %p
  ret i16 %v
}
|}
  in
  let m = parse src in
  Alcotest.(check int64) "tbl[2]" 30L (interp m "f" [ 2L ]);
  Alcotest.(check int64) "tbl[0]" 10L (interp m "f" [ 0L ])

let test_interp_out_of_bounds_traps () =
  let src =
    {|
define external @f() i8 {
entry:
  %v = load i8, ptr 999999999999
  ret i8 %v
}
|}
  in
  let m = parse src in
  Alcotest.(check bool) "traps" true
    (try
       ignore (interp m "f" []);
       false
     with Ir.Interp.Trap _ -> true)

(* ---------------- frontend torture ---------------- *)

let test_minic_deep_nesting () =
  let depth = 40 in
  let opens = String.concat "" (List.init depth (fun i -> Printf.sprintf "if (x > %d) { " i)) in
  let closes = String.concat "" (List.init depth (fun _ -> "acc++; }")) in
  let src = Printf.sprintf "int f(int x) { int acc = 0; %s acc = 100; %s return acc; }" opens closes in
  let m = compile src in
  Alcotest.(check bool) "deep nesting compiles" true (Ir.Verify.check_module m = []);
  Alcotest.(check int64) "all levels taken" (Int64.of_int (100 + depth)) (interp m "f" [ 100L ]);
  Alcotest.(check int64) "no level taken" 0L (interp m "f" [ -1L ])

let test_minic_comment_only_bodies () =
  let m = compile "int f(void) { /* nothing */ // still nothing\n return 7; }" in
  Alcotest.(check int64) "7" 7L (interp m "f" [])

let test_minic_operator_precedence_matrix () =
  let cases =
    [
      ("1 + 2 * 3 - 4 / 2", 5L);
      ("(1 + 2) * (3 - 4) / 1", -3L);
      ("1 << 3 | 1", 9L);
      ("7 & 3 ^ 1", 2L);
      ("10 % 4 + 1", 3L);
      ("1 < 2 == 1", 1L);
      ("!0 + !5", 1L);
      ("~0 + 1", 0L);
      ("-3 * -3", 9L);
      ("2 > 1 ? 10 : 20", 10L);
      ("0 ? 1 : 2 ? 3 : 4", 3L);
    ]
  in
  List.iter
    (fun (expr, expected) ->
      let m = compile (Printf.sprintf "int f(void) { return %s; }" expr) in
      Alcotest.(check int64) expr expected (interp m "f" []))
    cases

let test_minic_shadowing_scopes () =
  let src =
    {|
int f(int x) {
  int y = x;
  {
    int y = x * 10;
    x = y + 1;
  }
  return x + y;
}
|}
  in
  (* inner y = 50, x = 51, outer y = 5 -> 56 *)
  Alcotest.(check int64) "shadowing" 56L (interp (compile src) "f" [ 5L ])

let test_minic_global_shadowed_by_local () =
  let src = {|
int g = 100;
int f(int g) { return g + 1; }
int h(void) { return g; }
|} in
  let m = compile src in
  Alcotest.(check int64) "param wins" 6L (interp m "f" [ 5L ]);
  Alcotest.(check int64) "global intact" 100L (interp m "h" [])

let test_minic_string_concat () =
  let src = {|
static const char s[] = "ab" "cd";
int f(int i) { return s[i]; }
|} in
  let m = compile src in
  Alcotest.(check int64) "'c'" 99L (interp m "f" [ 2L ])

let test_minic_do_while_executes_once () =
  let src = "int f(void) { int n = 0; do { n++; } while (n < 0); return n; }" in
  Alcotest.(check int64) "once" 1L (interp (compile src) "f" [])

let test_minic_empty_function_void () =
  let m = compile "void f(void) { } int g(void) { f(); return 3; }" in
  Alcotest.(check int64) "3" 3L (interp m "g" [])

let test_minic_typecheck_void_misuse () =
  let errs =
    Minic.Typecheck.check
      (Minic.Parser.parse_program "void f(void) { } int g(void) { return f() + 1; }")
  in
  (* calling void in arithmetic: loosely typed, but at minimum no crash;
     compatible() rejects Void+Int *)
  Alcotest.(check bool) "flagged or tolerated without crash" true
    (List.length errs >= 0)

(* ---------------- codegen stress ---------------- *)

let test_codegen_spill_pressure () =
  (* 20 simultaneously-live values force spilling; result must agree with
     the interpreter *)
  let n = 20 in
  let decls =
    String.concat "\n"
      (List.init n (fun i -> Printf.sprintf "  int v%d = x + %d;" i i))
  in
  let sum = String.concat " + " (List.init n (fun i -> Printf.sprintf "v%d" i)) in
  let uses =
    String.concat "\n"
      (List.init n (fun i -> Printf.sprintf "  acc = acc * 3 + v%d;" i))
  in
  let src =
    Printf.sprintf "int f(int x) {\n%s\n  int acc = %s;\n%s\n  return acc;\n}" decls
      sum uses
  in
  let m1 = compile src in
  let m2 = compile src in
  let vm = vm_of_module m2 in
  List.iter
    (fun x ->
      Alcotest.(check int64) "spill pressure" (interp m1 "f" [ x ]) (Vm.call vm "f" [ x ]))
    [ 0L; 7L; -3L ]

let test_codegen_spill_pressure_optimized () =
  let n = 16 in
  let decls =
    String.concat "\n"
      (List.init n (fun i -> Printf.sprintf "  int v%d = (x ^ %d) * %d;" i i (i + 3)))
  in
  let sum = String.concat " + " (List.init n (fun i -> Printf.sprintf "v%d" i)) in
  let src = Printf.sprintf "int f(int x) {\n%s\n  return %s;\n}" decls sum in
  let m1 = compile src in
  let m2 = compile src in
  ignore (Opt.Pipeline.run ~keep:[ "f" ] m2);
  let vm = vm_of_module m2 in
  List.iter
    (fun x ->
      Alcotest.(check int64) "optimized spill" (interp m1 "f" [ x ]) (Vm.call vm "f" [ x ]))
    [ 1L; 100L; -77L ]

let test_codegen_deep_recursion () =
  let src = "int f(int n) { if (n <= 0) return 0; return 1 + f(n - 1); }" in
  let vm = vm_of_module (compile src) in
  Alcotest.(check int64) "depth 1000" 1000L (Vm.call vm "f" [ 1000L ])

let test_codegen_stack_overflow_faults () =
  let src = "int f(int n) { return 1 + f(n + 1); }" in
  let vm = vm_of_module (compile src) in
  Alcotest.(check bool) "faults cleanly" true
    (try
       ignore (Vm.call vm "f" [ 0L ]);
       false
     with Vm.Fault _ -> true)

let test_codegen_big_switch_jump_table () =
  let cases =
    String.concat "\n"
      (List.init 100 (fun i -> Printf.sprintf "    case %d: return %d;" i (i * 7)))
  in
  let src = Printf.sprintf "int f(int x) {\n  switch (x) {\n%s\n  }\n  return -1;\n}" cases in
  let m = compile src in
  let vm = vm_of_module m in
  Alcotest.(check int64) "case 42" 294L (Vm.call vm "f" [ 42L ]);
  Alcotest.(check int64) "case 99" 693L (Vm.call vm "f" [ 99L ]);
  Alcotest.(check int64) "default" (-1L) (Vm.call vm "f" [ 1000L ])

let test_codegen_six_arguments () =
  let src = "long f(long a, long b, long c, long d, long e, long g) { return a + b*2 + c*3 + d*4 + e*5 + g*6; }" in
  let vm = vm_of_module (compile src) in
  Alcotest.(check int64) "six args" 91L (Vm.call vm "f" [ 1L; 2L; 3L; 4L; 5L; 6L ])

let test_codegen_mutual_recursion () =
  let src =
    {|
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
|}
  in
  let vm = vm_of_module (compile src) in
  Alcotest.(check int64) "17 odd" 1L (Vm.call vm "is_odd" [ 17L ]);
  Alcotest.(check int64) "17 not even" 0L (Vm.call vm "is_even" [ 17L ])

let test_vm_division_by_zero_faults () =
  let vm = vm_of_module (compile "int f(int x) { return 10 / x; }") in
  Alcotest.(check bool) "faults" true
    (try
       ignore (Vm.call vm "f" [ 0L ]);
       false
     with Vm.Fault _ -> true)

(* ---------------- linker edges ---------------- *)

let test_linker_alias_called_cross_object () =
  let m1 =
    parse
      {|
@vec_add = external alias @vec_add_impl
define internal @vec_add_impl(i32 %x) i32 {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
|}
  in
  let m2 =
    parse
      {|
declare external @vec_add(i32 %x) i32
define external @caller(i32 %x) i32 {
entry:
  %r = call i32 @vec_add(i32 %x)
  ret i32 %r
}
|}
  in
  let exe = Link.Linker.link [ Link.Objfile.of_module m1; Link.Objfile.of_module m2 ] in
  let vm = Vm.create exe in
  Alcotest.(check int64) "alias call" 8L (Vm.call vm "caller" [ 7L ])

let test_linker_internal_symbols_can_share_names_across_objects () =
  (* two fragments with same-named *internal* helpers would collide in our
     single-namespace linker — Odin avoids this by fragment-unique clone
     names; verify the collision IS detected (the invariant the renaming
     protects) *)
  let mk () =
    parse
      {|
define internal @helper() i32 {
entry:
  ret i32 1
}
define external @user_XX() i32 {
entry:
  %r = call i32 @helper()
  ret i32 %r
}
|}
  in
  let o1 = Link.Objfile.of_module (mk ()) in
  let m2 = mk () in
  (match Ir.Modul.find m2 "user_XX" with
  | Some (Ir.Modul.Fun f) -> Ir.Func.(ignore f.name)
  | _ -> ());
  Alcotest.(check bool) "collision detected" true
    (try
       ignore (Link.Linker.link [ o1; Link.Objfile.of_module m2 ]);
       false
     with Link.Linker.Duplicate_symbol { symbol = "helper"; _ } -> true)

let test_linker_data_relocation_content () =
  let m =
    parse
      {|
@a = internal constant [i32 x 42]
@ptrs = internal constant [ptr x @a, @a]
define external @f() i32 {
entry:
  %slot = gep ptr @ptrs, i64 1, size 8
  %p = load ptr, ptr %slot
  %v = load i32, ptr %p
  ret i32 %v
}
|}
  in
  let vm = vm_of_module m in
  Alcotest.(check int64) "through reloc" 42L (Vm.call vm "f" [])

(* ---------------- Odin lifecycle edges ---------------- *)

let test_session_refresh_without_changes_is_noop () =
  let m = compile "int main(int x) { return x + 1; }" in
  let session =
    Odin.Session.create ~keep:[ "main" ] ~runtime_globals:[ Odin.Cov.runtime_global m ] m
  in
  let _ = Odin.Cov.setup session in
  ignore (Odin.Session.build session);
  Alcotest.(check bool) "noop refresh" true (Odin.Session.refresh session = None)

let test_session_disable_reenable_probe () =
  let m = compile "int main(int x) { return x * 2; }" in
  let session =
    Odin.Session.create ~keep:[ "main" ] ~runtime_globals:[ Odin.Cov.runtime_global m ] m
  in
  let cov = Odin.Cov.setup session in
  ignore (Odin.Session.build session);
  let probe = List.hd (Instr.Manager.to_list session.Odin.Session.manager) in
  (* disable: counter goes quiet *)
  Instr.Manager.set_enabled session.Odin.Session.manager probe false;
  ignore (Odin.Session.refresh session);
  let vm = Vm.create (Odin.Session.executable session) in
  ignore (Vm.call vm "main" [ 1L ]);
  Alcotest.(check int) "disabled probe silent" 0 (Odin.Cov.read_counter vm probe.Instr.Probe.pid);
  (* re-enable: counter comes back — flexibility the paper claims *)
  Instr.Manager.set_enabled session.Odin.Session.manager probe true;
  ignore (Odin.Session.refresh session);
  let vm2 = Vm.create (Odin.Session.executable session) in
  ignore (Vm.call vm2 "main" [ 1L ]);
  Alcotest.(check bool) "re-enabled probe fires" true
    (Odin.Cov.read_counter vm2 probe.Instr.Probe.pid > 0);
  ignore cov

let test_session_many_rebuild_cycles () =
  (* repeated prune/rebuild cycles stay consistent (cache + linker reuse) *)
  let m =
    compile
      {|
int path_a(int x) { return x * 3 + 1; }
int path_b(int x) { return x * 5 + 2; }
int path_c(int x) { return x * 7 + 3; }
int main(int x) {
  if (x < 10) return path_a(x);
  if (x < 100) return path_b(x);
  return path_c(x);
}
|}
  in
  let reference = Ir.Clone.clone_module m in
  let session =
    Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ] m
  in
  let cov = Odin.Cov.setup session in
  ignore (Odin.Session.build session);
  let st = Ir.Interp.create reference in
  List.iter
    (fun x ->
      let vm = Vm.create (Odin.Session.executable session) in
      let got = Vm.call vm "main" [ x ] in
      let expected = Ir.Interp.run st "main" [ x ] in
      Alcotest.(check int64) (Printf.sprintf "main(%Ld)" x) expected got;
      ignore (Odin.Cov.harvest cov vm);
      if Odin.Cov.prune_fired cov > 0 then ignore (Odin.Session.refresh session))
    [ 1L; 5L; 50L; 99L; 500L; 2L; 60L; 1000L ]

let test_probe_manager_remove_unknown_is_safe () =
  let mgr = Instr.Manager.create () in
  let p =
    Instr.Manager.add mgr ~target:"f"
      (Instr.Probe.Cov { cov_block = "entry"; cov_hits = 0 })
  in
  Instr.Manager.remove mgr p;
  Instr.Manager.remove mgr p;
  Alcotest.(check int) "empty" 0 (Instr.Manager.count mgr);
  Alcotest.(check bool) "still dirty (removed target)" true
    (Instr.Manager.has_changes mgr)

(* ---------------- fault tolerance: transactional rebuilds ---------------- *)

module Fault = Support.Fault

let fault_src =
  {|
int path_a(int x) { return x * 3 + 1; }
int path_b(int x) { return x * 5 + 2; }
int path_c(int x) { return x * 7 + 3; }
int main(int x) {
  if (x < 10) return path_a(x);
  if (x < 100) return path_b(x);
  return path_c(x);
}
|}

let make_faulty_session ?pool ?cache_dir ?max_retries ?job_timeout
    ?incremental_link () =
  let m = compile fault_src in
  let reference = Ir.Clone.clone_module m in
  let session =
    (* tier pinned off: the matrix pins which fault sites fire on the
       optimizing pipeline, and tier-0 legitimately never visits
       opt.pipeline (the torn tier-swap row lives in test_tier) *)
    Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      ?pool ?cache_dir ?max_retries ?job_timeout ?incremental_link
      ~tiered:false m
  in
  let _cov = Odin.Cov.setup session in
  (session, reference)

(* The paper-level invariant under fault injection: whatever a rebuild
   reported, the session's executable computes the same results as the
   pristine interpreter. *)
let check_differential session reference =
  let st = Ir.Interp.create reference in
  List.iter
    (fun x ->
      let vm = Vm.create (Odin.Session.executable session) in
      Alcotest.(check int64)
        (Printf.sprintf "VM = interp on main(%Ld)" x)
        (Ir.Interp.run st "main" [ x ])
        (Vm.call vm "main" [ x ]))
    [ 1L; 5L; 50L; 99L; 500L ]

(* Disable one active probe: marks exactly one fragment for recompile. *)
let toggle_probe session =
  let mgr = session.Odin.Session.manager in
  match List.filter (fun p -> p.Instr.Probe.enabled) (Instr.Manager.to_list mgr) with
  | [] -> Alcotest.fail "no enabled probe to toggle"
  | p :: _ -> Instr.Manager.set_enabled mgr p false

let outcome_to_string = function
  | Odin.Session.Ok -> "Ok"
  | Odin.Session.Degraded fids ->
    Printf.sprintf "Degraded [%s]" (String.concat ";" (List.map string_of_int fids))
  | Odin.Session.Rolled_back e ->
    "Rolled_back: " ^ Odin.Session.build_error_to_string e

type expect = EOk | EDegraded | ERolled_back

let expect_to_string = function
  | EOk -> "Ok"
  | EDegraded -> "Degraded"
  | ERolled_back -> "Rolled_back"

(* One matrix cell: clean build, install the plan, toggle a probe,
   refresh, check the outcome class, the differential invariant, and
   that the session heals back to a clean Ok once the plan is gone. *)
let run_matrix_case ?cache_dir ?job_timeout ?incremental_link ~plan expected =
  let session, reference =
    make_faulty_session ?cache_dir ?job_timeout ?incremental_link ()
  in
  ignore (Odin.Session.build session);
  check_differential session reference;
  toggle_probe session;
  let outcome =
    Fault.with_plan plan (fun () ->
        match Odin.Session.try_refresh session with
        | Some o -> o
        | None -> Alcotest.fail "refresh had nothing to do")
  in
  (match (expected, outcome) with
  | EOk, Odin.Session.Ok -> ()
  | EDegraded, Odin.Session.Degraded (_ :: _) -> ()
  | ERolled_back, Odin.Session.Rolled_back _ -> ()
  | _ ->
    Alcotest.failf "expected %s, got %s" (expect_to_string expected)
      (outcome_to_string outcome));
  (* never a torn session: a consistent executable is always served *)
  check_differential session reference;
  (* with faults gone, the next refresh re-heals (or there is nothing
     left to do) and no fragment stays degraded *)
  (match Odin.Session.try_refresh session with
  | None -> ()
  | Some Odin.Session.Ok -> ()
  | Some o -> Alcotest.failf "heal refresh: %s" (outcome_to_string o));
  Alcotest.(check (list int)) "no degraded fragments left" []
    (Odin.Session.degraded_fragments session);
  check_differential session reference

(* Every fault site × {raise, transient, torn}: torn only bites at
   sites that corrupt their own output (store.write quarantines and
   recompiles -> Ok; link.patch corrupts an in-place patch, which the
   incremental linker's verify-after-patch pass must detect and turn
   into a rollback, exactly like a full-link failure); elsewhere a torn
   rule never fires and the refresh must stay Ok. The link.patch rows
   pin ~incremental_link:true so they hold under ODIN_INCR_LINK=0 runs
   of the suite. *)
let test_fault_matrix () =
  let store_dir site kind =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "odin-matrix-%s-%s" site (Fault.kind_to_string kind))
    in
    Support.Objstore.rm_rf dir;
    dir
  in
  let matrix =
    (* (site, needs_store, force incremental link on,
       expected for Raise / Transient / Torn) *)
    [
      ("session.materialize", false, None, EDegraded, EDegraded, EOk);
      ("opt.pipeline", false, None, EDegraded, EDegraded, EOk);
      ("codegen.emit", false, None, EDegraded, EDegraded, EOk);
      ("cache.get", false, None, EOk, EOk, EOk);
      ("link", false, None, ERolled_back, ERolled_back, EOk);
      ("link.patch", false, Some true, ERolled_back, ERolled_back, ERolled_back);
      ("store.read", true, None, EOk, EOk, EOk);
      ("store.write", true, None, EOk, EOk, EOk);
    ]
  in
  List.iter
    (fun (site, needs_store, incremental_link, exp_raise, exp_transient, exp_torn) ->
      List.iter
        (fun (kind, expected) ->
          let cache_dir = if needs_store then Some (store_dir site kind) else None in
          run_matrix_case ?cache_dir ?incremental_link
            ~plan:(Fault.plan ~seed:1 [ Fault.rule site kind ])
            expected;
          Option.iter Support.Objstore.rm_rf cache_dir)
        [
          (Fault.Raise, exp_raise);
          (Fault.Transient, exp_transient);
          (Fault.Torn, exp_torn);
        ])
    matrix

(* A single transient fault recovers via bounded retry: Ok, not
   Degraded — and the retry is visible in the session counters. *)
let test_fault_transient_retry_recovers () =
  let session, reference = make_faulty_session () in
  ignore (Odin.Session.build session);
  toggle_probe session;
  let outcome =
    Fault.with_plan
      (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 1) "opt.pipeline" Fault.Transient ])
      (fun () -> Option.get (Odin.Session.try_refresh session))
  in
  Alcotest.(check string) "retry recovered" "Ok" (outcome_to_string outcome);
  Alcotest.(check bool) "retry counted" true
    (Telemetry.Recorder.value
       (Some session.Odin.Session.telemetry)
       "session.fragment_retries"
     >= 1);
  check_differential session reference

(* Link failure rolls the whole refresh back: previous executable stays
   live, the probe change is retained and applies on the next refresh. *)
let test_fault_link_rollback_then_clean_refresh () =
  let session, reference = make_faulty_session () in
  ignore (Odin.Session.build session);
  let events_before = List.length (Odin.Session.events session) in
  toggle_probe session;
  (match
     Fault.with_plan
       (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 1) "link" Fault.Raise ])
       (fun () -> Option.get (Odin.Session.try_refresh session))
   with
  | Odin.Session.Rolled_back err ->
    Alcotest.(check string) "link phase" "link"
      (Odin.Session.phase_to_string err.Odin.Session.err_phase);
    Alcotest.(check bool) "readable diagnostic" true
      (String.length (Odin.Session.build_error_to_string err) > 0)
  | o -> Alcotest.failf "expected rollback, got %s" (outcome_to_string o));
  Alcotest.(check int) "rollback counted" 1 (Odin.Session.rollbacks session);
  Alcotest.(check int) "no event appended" events_before
    (List.length (Odin.Session.events session));
  (* previous executable still serves *)
  check_differential session reference;
  (* the pending change survived the rollback and applies cleanly now *)
  (match Odin.Session.try_refresh session with
  | Some Odin.Session.Ok -> ()
  | Some o -> Alcotest.failf "clean refresh: %s" (outcome_to_string o)
  | None -> Alcotest.fail "probe change was lost by the rollback");
  check_differential session reference

(* refresh raises the structured Build_error on rollback via the compat
   wrapper, and patch-stage failures carry the Patch phase. *)
let test_fault_structured_error_phases () =
  let session, _reference = make_faulty_session () in
  ignore (Odin.Session.build session);
  Odin.Session.add_patcher session (fun _ -> failwith "patcher exploded");
  toggle_probe session;
  (match Odin.Session.try_refresh session with
  | Some (Odin.Session.Rolled_back err) ->
    Alcotest.(check string) "patch phase" "patch"
      (Odin.Session.phase_to_string err.Odin.Session.err_phase);
    let msg = Odin.Session.build_error_to_string err in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions phase" true (contains msg "phase `patch'");
    Alcotest.(check bool) "mentions cause" true (contains msg "patcher exploded")
  | Some o -> Alcotest.failf "expected rollback, got %s" (outcome_to_string o)
  | None -> Alcotest.fail "refresh had nothing to do");
  (* the raising wrapper converts the same outcome into an exception *)
  Alcotest.(check bool) "refresh raises Build_error" true
    (try
       ignore (Odin.Session.refresh session);
       false
     with Odin.Session.Build_error _ -> true)

(* The cooperative watchdog: a delay fault pushes the fragment past its
   job timeout; the fragment degrades instead of stalling the rebuild. *)
let test_fault_job_timeout_degrades () =
  let session, reference = make_faulty_session ~job_timeout:1.0 () in
  ignore (Odin.Session.build session);
  toggle_probe session;
  let outcome =
    Fault.with_plan
      (Fault.plan [ Fault.rule "opt.pipeline" (Fault.Delay 10.) ])
      (fun () -> Option.get (Odin.Session.try_refresh session))
  in
  (match outcome with
  | Odin.Session.Degraded (_ :: _) -> ()
  | o -> Alcotest.failf "expected Degraded, got %s" (outcome_to_string o));
  check_differential session reference;
  (* heals once the fault plan is gone *)
  (match Odin.Session.try_refresh session with
  | Some Odin.Session.Ok | None -> ()
  | Some o -> Alcotest.failf "heal: %s" (outcome_to_string o));
  Alcotest.(check (list int)) "healed" [] (Odin.Session.degraded_fragments session)

(* Warm restart through the persistent store: a second session over the
   same cache dir recompiles 0 fragments; a corrupted entry is detected,
   quarantined and silently recompiled. *)
let test_store_warm_restart_and_corruption () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "odin-warm-restart-test"
  in
  Support.Objstore.rm_rf dir;
  Fun.protect ~finally:(fun () -> Support.Objstore.rm_rf dir) @@ fun () ->
  let session1, reference = make_faulty_session ~cache_dir:dir () in
  let ev1 = Odin.Session.build session1 in
  Alcotest.(check int) "cold build hits nothing" 0 ev1.Odin.Session.ev_cache_hits;
  let nfrags = List.length ev1.Odin.Session.ev_fragments in
  Alcotest.(check bool) "multi-fragment" true (nfrags > 1);
  (* fresh process, same store: everything served from disk *)
  let session2, _ = make_faulty_session ~cache_dir:dir () in
  let ev2 = Odin.Session.build session2 in
  Alcotest.(check int) "warm restart recompiles 0 fragments" nfrags
    ev2.Odin.Session.ev_cache_hits;
  check_differential session2 reference;
  (let st = Option.get (Odin.Session.store_stats session2) in
   Alcotest.(check int) "all from store" nfrags st.Support.Objstore.st_hits);
  (* corrupt one entry on disk: detected, quarantined, recompiled *)
  let store =
    Support.Objstore.open_store ~version:Odin.Session.store_format_version dir
  in
  let entries =
    let objects = Filename.concat dir "objects" in
    Array.to_list (Sys.readdir objects)
    |> List.concat_map (fun shard ->
           let d = Filename.concat objects shard in
           List.map (fun f -> Filename.concat d f) (Array.to_list (Sys.readdir d)))
  in
  Alcotest.(check int) "one entry per fragment" nfrags (List.length entries);
  Support.Objstore.write_file (List.hd entries) "garbage, not an entry";
  ignore store;
  let session3, _ = make_faulty_session ~cache_dir:dir () in
  let ev3 = Odin.Session.build session3 in
  Alcotest.(check int) "corrupt entry recompiled" (nfrags - 1)
    ev3.Odin.Session.ev_cache_hits;
  check_differential session3 reference;
  let st3 = Option.get (Odin.Session.store_stats session3) in
  Alcotest.(check int) "quarantined" 1 st3.Support.Objstore.st_quarantined

(* The matrix invariant holds for any pool size: repeat a degrading and
   a rolling-back cell on a 4-domain pool. *)
let test_fault_matrix_parallel_pool () =
  let pool = Support.Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Support.Pool.shutdown pool) @@ fun () ->
  List.iter
    (fun (site, expected) ->
      let session, reference = make_faulty_session ~pool () in
      ignore (Odin.Session.build session);
      toggle_probe session;
      let outcome =
        Fault.with_plan (Fault.plan [ Fault.rule site Fault.Raise ]) (fun () ->
            Option.get (Odin.Session.try_refresh session))
      in
      (match (expected, outcome) with
      | EDegraded, Odin.Session.Degraded (_ :: _) -> ()
      | ERolled_back, Odin.Session.Rolled_back _ -> ()
      | _, o ->
        Alcotest.failf "pool=4 %s: expected %s, got %s" site
          (expect_to_string expected) (outcome_to_string o));
      check_differential session reference)
    [ ("opt.pipeline", EDegraded); ("link", ERolled_back) ]

(* ---------------- cross-layer properties ---------------- *)

let prop_workload_fragments_equal_whole =
  QCheck2.Test.make
    ~name:"fragmented build = whole-program build on workload inputs" ~count:6
    QCheck2.Gen.(pair (oneofl [ "woff2"; "lcms"; "proj4"; "json"; "sqlite" ]) (int_bound 10000))
    (fun (name, seed) ->
      let profile = Workloads.Profile.find_exn name in
      let m = Workloads.Generate.compile profile in
      let plain =
        Baselines.Plain.build ~keep:[ "target_main" ]
          ~host:Workloads.Generate.host_functions m
      in
      let session =
        Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "target_main" ]
          ~host:Workloads.Generate.host_functions (Ir.Clone.clone_module m)
      in
      ignore (Odin.Session.build session);
      let fragged = Odin.Session.executable session in
      let rng = Support.Rng.create seed in
      let input = String.init 40 (fun _ -> Char.chr (Support.Rng.int rng 256)) in
      let run exe =
        let vm = Vm.create exe in
        List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L))
          Workloads.Generate.host_functions;
        let addr = Vm.write_buffer vm input in
        Vm.call vm "target_main" [ addr; Int64.of_int (String.length input) ]
      in
      run plain = run fragged)

let prop_switch_differential =
  QCheck2.Test.make ~name:"switch-heavy functions: interp = VM (O0/O2)" ~count:20
    QCheck2.Gen.(pair (int_range 2 12) (int_range (-20) 40))
    (fun (ncases, x) ->
      let cases =
        String.concat "\n"
          (List.init ncases (fun i ->
               Printf.sprintf "    case %d: acc = acc * %d + %d; break;" i (i + 2) i))
      in
      let src =
        Printf.sprintf
          {|
int f(int x) {
  int acc = 1;
  for (int i = 0; i < 5; i++) {
    switch ((x + i) %% %d) {
%s
      default: acc = acc - 1;
    }
  }
  return acc;
}
|}
          (ncases + 2) cases
      in
      let m1 = compile src in
      let m2 = compile src in
      ignore (Opt.Pipeline.run ~keep:[ "f" ] m2);
      let expected = interp m1 "f" [ Int64.of_int x ] in
      let vm0 = vm_of_module (compile src) in
      let vm2 = vm_of_module m2 in
      Vm.call vm0 "f" [ Int64.of_int x ] = expected
      && Vm.call vm2 "f" [ Int64.of_int x ] = expected)

let prop_memory_differential =
  QCheck2.Test.make ~name:"array-churn functions: interp = VM" ~count:20
    QCheck2.Gen.(pair (int_range 1 15) (int_range 0 255))
    (fun (n, b) ->
      let src =
        Printf.sprintf
          {|
int f(int n, int seed) {
  char buf[32];
  for (int i = 0; i < 32; i++) buf[i] = (seed + i * 7) & 255;
  int acc = 0;
  for (int i = 0; i < %d; i++) {
    buf[(i * 5) %% 32] = buf[i] ^ i;
    acc += buf[(i * 3) %% 32];
  }
  return acc;
}
|}
          (n * 2)
      in
      let m = compile src in
      let expected = interp m "f" [ Int64.of_int n; Int64.of_int b ] in
      let vm = vm_of_module (compile src) in
      Vm.call vm "f" [ Int64.of_int n; Int64.of_int b ] = expected)

let () =
  Alcotest.run "robustness"
    [
      ( "ir-edges",
        [
          Alcotest.test_case "escape roundtrip" `Quick test_print_escapes_roundtrip;
          Alcotest.test_case "large constants" `Quick test_parse_negative_and_large_constants;
          Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "phi type mismatch" `Quick test_verify_phi_type_mismatch;
          Alcotest.test_case "gep arithmetic" `Quick test_interp_ptr_arithmetic_via_gep;
          Alcotest.test_case "oob traps" `Quick test_interp_out_of_bounds_traps;
        ] );
      ( "frontend-torture",
        [
          Alcotest.test_case "deep nesting" `Quick test_minic_deep_nesting;
          Alcotest.test_case "comments" `Quick test_minic_comment_only_bodies;
          Alcotest.test_case "precedence matrix" `Quick test_minic_operator_precedence_matrix;
          Alcotest.test_case "shadowing" `Quick test_minic_shadowing_scopes;
          Alcotest.test_case "global vs param" `Quick test_minic_global_shadowed_by_local;
          Alcotest.test_case "string concat" `Quick test_minic_string_concat;
          Alcotest.test_case "do-while once" `Quick test_minic_do_while_executes_once;
          Alcotest.test_case "void function" `Quick test_minic_empty_function_void;
          Alcotest.test_case "void misuse" `Quick test_minic_typecheck_void_misuse;
        ] );
      ( "codegen-stress",
        [
          Alcotest.test_case "spill pressure" `Quick test_codegen_spill_pressure;
          Alcotest.test_case "spill pressure O2" `Quick test_codegen_spill_pressure_optimized;
          Alcotest.test_case "deep recursion" `Quick test_codegen_deep_recursion;
          Alcotest.test_case "stack overflow faults" `Quick test_codegen_stack_overflow_faults;
          Alcotest.test_case "100-case switch" `Quick test_codegen_big_switch_jump_table;
          Alcotest.test_case "six arguments" `Quick test_codegen_six_arguments;
          Alcotest.test_case "mutual recursion" `Quick test_codegen_mutual_recursion;
          Alcotest.test_case "division fault" `Quick test_vm_division_by_zero_faults;
        ] );
      ( "linker-edges",
        [
          Alcotest.test_case "alias cross-object" `Quick test_linker_alias_called_cross_object;
          Alcotest.test_case "internal name collision" `Quick
            test_linker_internal_symbols_can_share_names_across_objects;
          Alcotest.test_case "data relocation" `Quick test_linker_data_relocation_content;
        ] );
      ( "odin-lifecycle",
        [
          Alcotest.test_case "refresh noop" `Quick test_session_refresh_without_changes_is_noop;
          Alcotest.test_case "disable/re-enable probe" `Quick test_session_disable_reenable_probe;
          Alcotest.test_case "many rebuild cycles" `Quick test_session_many_rebuild_cycles;
          Alcotest.test_case "double remove safe" `Quick test_probe_manager_remove_unknown_is_safe;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "site x kind matrix" `Slow test_fault_matrix;
          Alcotest.test_case "transient retry recovers" `Quick
            test_fault_transient_retry_recovers;
          Alcotest.test_case "link rollback + clean refresh" `Quick
            test_fault_link_rollback_then_clean_refresh;
          Alcotest.test_case "structured error phases" `Quick
            test_fault_structured_error_phases;
          Alcotest.test_case "job timeout degrades" `Quick
            test_fault_job_timeout_degrades;
          Alcotest.test_case "warm restart + corruption" `Quick
            test_store_warm_restart_and_corruption;
          Alcotest.test_case "matrix on 4-domain pool" `Quick
            test_fault_matrix_parallel_pool;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_workload_fragments_equal_whole;
          QCheck_alcotest.to_alcotest prop_switch_differential;
          QCheck_alcotest.to_alcotest prop_memory_differential;
        ] );
    ]
