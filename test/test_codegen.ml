(* Tests for the backend (isel, regalloc, emission), the linker, and the
   VM. The central discipline is differential testing: every program runs
   both on the reference IR interpreter and as compiled machine code on
   the VM, and the results must agree — before and after optimization. *)

let compile_to_vm ?(host = []) m =
  let obj = Link.Objfile.of_module m in
  let exe = Link.Linker.link ~host:(List.map fst host) [ obj ] in
  let vm = Vm.create exe in
  List.iter (fun (n, f) -> Vm.register_host vm n f) host;
  vm

let run_vm ?host src fname args =
  let m = Minic.Lower.compile src in
  let vm = compile_to_vm ?host m in
  Vm.call vm fname args

(* run the same source in interp and vm, optionally optimized, and check
   agreement on all argument vectors *)
let differential ?(optimize = false) ~keep src fname arg_vectors =
  let m_interp = Minic.Lower.compile src in
  let m_vm = Minic.Lower.compile src in
  if optimize then begin
    ignore (Opt.Pipeline.run ~keep m_vm);
    Ir.Verify.run_exn m_vm
  end;
  let st = Ir.Interp.create m_interp in
  let vm = compile_to_vm m_vm in
  List.iter
    (fun args ->
      let expected = Ir.Interp.run st fname args in
      let got = Vm.call vm fname args in
      Alcotest.(check int64)
        (Printf.sprintf "%s%s" fname (if optimize then " (optimized)" else ""))
        expected got)
    arg_vectors

let test_vm_arith () =
  Alcotest.(check int64) "add" 7L
    (run_vm "int f(int a, int b) { return a + b; }" "f" [ 3L; 4L ])

let test_vm_factorial () =
  let src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }" in
  Alcotest.(check int64) "6!" 720L (run_vm src "fact" [ 6L ])

let test_vm_loop_sum () =
  let src =
    "int f(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }"
  in
  Alcotest.(check int64) "sum" 4950L (run_vm src "f" [ 100L ])

let test_vm_memory () =
  let src =
    {|
static int buf[16];
int f(int n) {
  for (int i = 0; i < n; i++) buf[i] = i * 3;
  int acc = 0;
  for (int i = 0; i < n; i++) acc += buf[i];
  return acc;
}
|}
  in
  Alcotest.(check int64) "memory" 360L (run_vm src "f" [ 16L ])

let test_vm_switch () =
  let src =
    {|
int f(int x) {
  switch (x) {
    case 0: return 100;
    case 1: return 101;
    case 7: return 107;
    default: return -1;
  }
}
|}
  in
  Alcotest.(check int64) "case 0" 100L (run_vm src "f" [ 0L ]);
  Alcotest.(check int64) "case 7" 107L (run_vm src "f" [ 7L ]);
  Alcotest.(check int64) "default" (-1L) (run_vm src "f" [ 3L ])

let test_vm_function_pointers () =
  let src =
    {|
static int inc(int x) { return x + 1; }
static int dbl(int x) { return x * 2; }
static int *ops[2] = {inc, dbl};
int apply(int i, int x) {
  int *f = ops[i];
  return f(x);
}
|}
  in
  Alcotest.(check int64) "inc" 8L (run_vm src "apply" [ 0L; 7L ]);
  Alcotest.(check int64) "dbl" 14L (run_vm src "apply" [ 1L; 7L ])

let test_vm_host_function () =
  let src = {|
extern int observe(int x);
int f(int x) { return observe(x) + 1; }
|} in
  let v = run_vm ~host:[ ("observe", fun vm -> Int64.mul (vm.Vm.regs.(0)) 10L) ] src "f" [ 4L ] in
  Alcotest.(check int64) "host" 41L v

let test_vm_cycles_counted () =
  let src = "int f(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }" in
  let m = Minic.Lower.compile src in
  let vm = compile_to_vm m in
  ignore (Vm.call vm "f" [ 10L ]);
  let c10 = vm.Vm.cycles in
  Vm.reset_counters vm;
  ignore (Vm.call vm "f" [ 100L ]);
  let c100 = vm.Vm.cycles in
  Alcotest.(check bool) "cycles scale with work" true (c100 > c10 * 5)

let test_vm_block_hook () =
  let src = "int f(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }" in
  let m = Minic.Lower.compile src in
  let vm = compile_to_vm m in
  let entries = ref 0 in
  Vm.set_block_hook vm (fun _ _ _ -> incr entries);
  ignore (Vm.call vm "f" [ 10L ]);
  (* loop executes ~10 iterations over cond+body+step blocks *)
  Alcotest.(check bool) "hook fires per block" true (!entries > 20)

let test_linker_duplicate_symbol () =
  let src = "int f(void) { return 1; }" in
  let m1 = Minic.Lower.compile src in
  let m2 = Minic.Lower.compile src in
  let o1 = Link.Objfile.of_module m1 in
  let o2 = Link.Objfile.of_module m2 in
  Alcotest.check_raises "duplicate"
    (Link.Linker.Duplicate_symbol
       { symbol = "f"; in_object = "program"; prior = "program" }) (fun () ->
      ignore (Link.Linker.link [ o1; o2 ]));
  (* the typed error renders a readable diagnostic naming both objects *)
  Alcotest.(check (option string))
    "message"
    (Some "duplicate symbol @f: defined in program and again in program")
    (Link.Linker.link_error_message
       (Link.Linker.Duplicate_symbol
          { symbol = "f"; in_object = "program"; prior = "program" }))

let test_linker_comdat_folding () =
  (* two objects define the same COMDAT symbol; first wins, no error *)
  let mk () =
    let m = Ir.Modul.create () in
    let fn =
      Ir.Modul.add_function m ~comdat:"tpl" ~name:"tpl_fn"
        ~params:[ (Ir.Types.I32, "x") ]
        ~ret:Ir.Types.I32 []
    in
    let b = Ir.Builder.create fn in
    let _ = Ir.Builder.new_block b "entry" in
    let r = Ir.Builder.binop b Ir.Ins.Add Ir.Types.I32 (Ir.Ins.Reg (Ir.Types.I32, "x")) (Ir.Builder.i32 1) in
    Ir.Builder.ret b (Some r);
    m
  in
  let o1 = Link.Objfile.of_module (mk ()) in
  let o2 = Link.Objfile.of_module (mk ()) in
  let exe = Link.Linker.link [ o1; o2 ] in
  let vm = Vm.create exe in
  Alcotest.(check int64) "folded" 5L (Vm.call vm "tpl_fn" [ 4L ])

let test_linker_undefined_symbol () =
  let m = Ir.Parse.module_of_string
      {|
define external @f() i32 {
entry:
  %r = call i32 @missing_fn()
  ret i32 %r
}
declare external @missing_fn() i32
|}
  in
  let obj = Link.Objfile.of_module m in
  Alcotest.check_raises "undefined"
    (Link.Linker.Undefined_symbol
       { symbol = "missing_fn"; referenced_from = "parsed" })
    (fun () -> ignore (Link.Linker.link [ obj ]));
  Alcotest.(check (option string))
    "message"
    (Some "undefined symbol @missing_fn (referenced from parsed)")
    (Link.Linker.link_error_message
       (Link.Linker.Undefined_symbol
          { symbol = "missing_fn"; referenced_from = "parsed" }))

let test_linker_cross_object_call () =
  let m1 =
    Ir.Parse.module_of_string
      {|
declare external @callee(i32 %x) i32
define external @caller(i32 %x) i32 {
entry:
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}
|}
  in
  let m2 =
    Ir.Parse.module_of_string
      {|
define external @callee(i32 %x) i32 {
entry:
  %r = mul i32 %x, 3
  ret i32 %r
}
|}
  in
  let exe = Link.Linker.link [ Link.Objfile.of_module m1; Link.Objfile.of_module m2 ] in
  let vm = Vm.create exe in
  Alcotest.(check int64) "cross-object" 21L (Vm.call vm "caller" [ 7L ])

let test_objfile_alias_requires_local_base () =
  let m =
    Ir.Parse.module_of_string
      {|
@a = external alias @base
define external @base() i32 {
entry:
  ret i32 9
}
|}
  in
  (* alias with local base: fine, both names callable at the same address *)
  let exe = Link.Linker.link [ Link.Objfile.of_module m ] in
  let vm = Vm.create exe in
  Alcotest.(check int64) "via alias" 9L (Vm.call vm "a" []);
  Alcotest.(check int64) "same address" (Link.Linker.addr_of exe "base")
    (Link.Linker.addr_of exe "a")

let test_objfile_alias_split_fails () =
  (* the innate constraint: compiling the alias separately from its base
     must fail at emission (paper Section 2.3) *)
  let m =
    Ir.Parse.module_of_string
      {|
@a = external alias @base
declare external @base() i32
|}
  in
  Alcotest.check_raises "alias split"
    (Link.Objfile.Emit_error "alias @a: base symbol @base is not defined in module parsed")
    (fun () -> ignore (Link.Objfile.of_module m))

(* ------------- differential: interp vs VM ------------- *)

let collatz_src =
  {|
int steps(int n) {
  int count = 0;
  while (n != 1 && count < 1000) {
    if (n % 2 == 0) n = n / 2;
    else n = 3 * n + 1;
    count++;
  }
  return count;
}
|}

let crc_src =
  {|
static const int table[8] = {7, 11, 13, 17, 19, 23, 29, 31};
long crc(long seed, int rounds) {
  long h = seed;
  for (int i = 0; i < rounds; i++) {
    h = h * 31 + table[i % 8];
    h = h ^ (h >> 7);
  }
  return h;
}
|}

let string_scan_src =
  {|
static const char keyword[] = "needle";
int find(char *buf, int len) {
  for (int i = 0; i + 6 <= len; i++) {
    int ok = 1;
    for (int j = 0; j < 6; j++) {
      if (buf[i + j] != keyword[j]) { ok = 0; break; }
    }
    if (ok) return i;
  }
  return -1;
}
int check(int c0, int c1) {
  char buf[16];
  buf[0] = 'x';
  buf[1] = c0;
  buf[2] = 'n'; buf[3] = 'e'; buf[4] = 'e'; buf[5] = 'd';
  buf[6] = 'l'; buf[7] = 'e';
  buf[8] = c1;
  return find(buf, 9);
}
|}

let test_diff_collatz () =
  differential ~keep:[ "steps" ] collatz_src "steps"
    (List.map (fun n -> [ Int64.of_int n ]) [ 1; 2; 7; 27; 97; 871 ])

let test_diff_collatz_optimized () =
  differential ~optimize:true ~keep:[ "steps" ] collatz_src "steps"
    (List.map (fun n -> [ Int64.of_int n ]) [ 1; 2; 7; 27; 97; 871 ])

let test_diff_crc () =
  differential ~keep:[ "crc" ] crc_src "crc"
    [ [ 1L; 4L ]; [ 99L; 20L ]; [ -7L; 13L ]; [ 123456L; 50L ] ]

let test_diff_crc_optimized () =
  differential ~optimize:true ~keep:[ "crc" ] crc_src "crc"
    [ [ 1L; 4L ]; [ 99L; 20L ]; [ -7L; 13L ]; [ 123456L; 50L ] ]

let test_diff_string_scan () =
  differential ~keep:[ "check" ] string_scan_src "check"
    [ [ 110L; 0L ]; [ 65L; 90L ]; [ 0L; 0L ] ]

let test_diff_string_scan_optimized () =
  differential ~optimize:true ~keep:[ "check" ] string_scan_src "check"
    [ [ 110L; 0L ]; [ 65L; 90L ]; [ 0L; 0L ] ]

(* property: random arithmetic expression trees agree between interp and
   compiled code, optimized and not *)
let gen_expr_src (ops : (int * int) list) =
  let body =
    List.mapi
      (fun i (op, k) ->
        let k = 1 + abs k mod 50 in
        match op mod 6 with
        | 0 -> Printf.sprintf "  a = a + b * %d;" k
        | 1 -> Printf.sprintf "  b = b - (a >> %d);" (k mod 8)
        | 2 -> Printf.sprintf "  a = (a ^ b) + %d;" k
        | 3 -> Printf.sprintf "  b = b | (a & %d);" k
        | 4 -> Printf.sprintf "  a = a * %d; b = b + %d;" (k mod 7) i
        | _ -> Printf.sprintf "  if (a > b) a = a - %d; else b = b + %d;" k k)
      ops
    |> String.concat "\n"
  in
  Printf.sprintf "long f(long a, long b) {\n%s\n  return a * 31 + b;\n}" body

let prop_diff_random_arith =
  QCheck2.Test.make ~name:"interp = VM on random arithmetic (O0 and O2)" ~count:40
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 12) (pair (int_bound 5) (int_bound 100)))
        (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (ops, a, b) ->
      let src = gen_expr_src ops in
      let m_interp = Minic.Lower.compile src in
      let m_o0 = Minic.Lower.compile src in
      let m_o2 = Minic.Lower.compile src in
      ignore (Opt.Pipeline.run ~keep:[ "f" ] m_o2);
      let st = Ir.Interp.create m_interp in
      let args = [ Int64.of_int a; Int64.of_int b ] in
      let expected = Ir.Interp.run st "f" args in
      let vm0 = compile_to_vm m_o0 in
      let vm2 = compile_to_vm m_o2 in
      Vm.call vm0 "f" args = expected && Vm.call vm2 "f" args = expected)

let () =
  Alcotest.run "codegen"
    [
      ( "vm",
        [
          Alcotest.test_case "arith" `Quick test_vm_arith;
          Alcotest.test_case "factorial" `Quick test_vm_factorial;
          Alcotest.test_case "loop sum" `Quick test_vm_loop_sum;
          Alcotest.test_case "memory" `Quick test_vm_memory;
          Alcotest.test_case "switch" `Quick test_vm_switch;
          Alcotest.test_case "function pointers" `Quick test_vm_function_pointers;
          Alcotest.test_case "host function" `Quick test_vm_host_function;
          Alcotest.test_case "cycles counted" `Quick test_vm_cycles_counted;
          Alcotest.test_case "block hook" `Quick test_vm_block_hook;
        ] );
      ( "linker",
        [
          Alcotest.test_case "duplicate symbol" `Quick test_linker_duplicate_symbol;
          Alcotest.test_case "comdat folding" `Quick test_linker_comdat_folding;
          Alcotest.test_case "undefined symbol" `Quick test_linker_undefined_symbol;
          Alcotest.test_case "cross-object call" `Quick test_linker_cross_object_call;
          Alcotest.test_case "alias shares address" `Quick test_objfile_alias_requires_local_base;
          Alcotest.test_case "alias split rejected" `Quick test_objfile_alias_split_fails;
        ] );
      ( "differential",
        [
          Alcotest.test_case "collatz O0" `Quick test_diff_collatz;
          Alcotest.test_case "collatz O2" `Quick test_diff_collatz_optimized;
          Alcotest.test_case "crc O0" `Quick test_diff_crc;
          Alcotest.test_case "crc O2" `Quick test_diff_crc_optimized;
          Alcotest.test_case "string scan O0" `Quick test_diff_string_scan;
          Alcotest.test_case "string scan O2" `Quick test_diff_string_scan_optimized;
          QCheck_alcotest.to_alcotest prop_diff_random_arith;
        ] );
    ]
