(* Two-tier compilation and on-stack replacement.

   The correctness bar mirrors the relink suite: tiering is a pure
   performance lever, so everything the VM can observe must be
   reachable from an untiered session too. A fully-promoted tiered
   session serves bit-identical objects and traces to an ODIN_TIER=0
   session; a mid-run OSR migration produces the same trace as
   restarting on the new image; farm promotion decisions are a pure
   function of the barrier-merged profile, hence bit-identical across
   worker counts and driver substrates; and a torn tier-swap patch
   rolls back to the tier-0 image with the promotion queue intact. *)

module Pool = Support.Pool
module Fault = Support.Fault
module Incr = Link.Incremental

(* Re-exec shim for the process-farm determinism matrix (same trick as
   test_proc: the test binary doubles as the worker executable). *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "fuzz-worker" then begin
    Farm.Proc.worker_main ();
    exit 0
  end

let worker_argv = [| Sys.executable_name; "fuzz-worker" |]

(* ---------------- session-level helpers ---------------- *)

let target_src =
  {|
static int f0(int x) { if (x > 3) return x * 2; return x + 1; }
static int f1(int x) { int a = 0; for (int i = 0; i < 3; i++) a = a + f0(x + i); return a; }
static int f2(int x) { if ((x & 1) == 0) return f1(x); return f1(x + 1); }
static int f3(int x) { return f2(x) + f0(x); }
static int f4(int x) { int a = 0; while (x > 0) { a = a + f3(x); x = x - 7; } return a; }
int main(int x) { return f4(x) + f2(x + 5); }
|}

(* Max partition: one fragment per function, so promotions are
   per-function and the schedule is genuinely multi-fragment. *)
let make_session ?tiered () =
  let m = Minic.Lower.compile target_src in
  let session =
    Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      ?tiered m
  in
  ignore (Odin.Cov.setup session);
  ignore (Odin.Session.build session);
  session

let inputs = [ 0L; 1L; 5L; 17L; 50L ]

let run_main session x =
  let vm = Vm.create (Odin.Session.executable session) in
  let ret = Vm.call vm "main" [ x ] in
  (ret, vm.Vm.cycles)

let trace session = List.map (run_main session) inputs
let returns session = List.map (fun (r, _) -> r) (trace session)

(* Per-fragment object fingerprints: Objfile.t is pure data, so a
   digest of the marshalled bytes is a faithful bit-identity check. *)
let fingerprint session =
  Hashtbl.fold
    (fun fid obj acc -> (fid, Digest.string (Marshal.to_string obj [])) :: acc)
    session.Odin.Session.cache []
  |> List.sort compare

let all_fids session =
  List.map fst (Odin.Session.fragment_sizes session) |> List.sort compare

let toggle_all session enabled =
  Instr.Manager.iter
    (fun p -> Instr.Manager.set_enabled session.Odin.Session.manager p enabled)
    session.Odin.Session.manager

let promote_all session =
  Odin.Session.promote session (all_fids session);
  match Odin.Session.try_refresh session with
  | Some Odin.Session.Ok -> ()
  | Some _ -> Alcotest.fail "promotion refresh not Ok"
  | None -> Alcotest.fail "promotion refresh was a no-op"

(* ---------------- tier-0 baseline semantics ---------------- *)

let test_tier0_starts_baseline () =
  let tiered = make_session ~tiered:true () in
  Alcotest.(check bool) "session is tiered" true (Odin.Session.tiered tiered);
  List.iter
    (fun fid ->
      Alcotest.(check int)
        (Printf.sprintf "fragment %d at tier 0" fid)
        0
        (Odin.Session.fragment_tier tiered fid))
    (all_fids tiered);
  let st = Odin.Session.tier_stats tiered in
  Alcotest.(check bool) "tier-0 compiles counted" true
    (st.Odin.Session.ts_tier0_compiles > 0);
  Alcotest.(check int) "no tier-1 compiles yet" 0
    st.Odin.Session.ts_tier1_compiles;
  (* tier 0 is semantically equivalent to the optimizing tier *)
  let untiered = make_session ~tiered:false () in
  Alcotest.(check (list int64)) "baseline returns match optimized"
    (returns untiered) (returns tiered)

let test_untiered_session_all_tier1 () =
  let s = make_session ~tiered:false () in
  Alcotest.(check bool) "untiered" false (Odin.Session.tiered s);
  List.iter
    (fun fid ->
      Alcotest.(check int) "tier 1" 1 (Odin.Session.fragment_tier s fid))
    (all_fids s);
  Alcotest.(check int) "no tier-0 compiles" 0
    (Odin.Session.tier_stats s).Odin.Session.ts_tier0_compiles

(* ---------------- full promotion: bit-equality ---------------- *)

let test_full_promotion_bit_identical () =
  let tiered = make_session ~tiered:true () in
  let untiered = make_session ~tiered:false () in
  promote_all tiered;
  List.iter
    (fun fid ->
      Alcotest.(check int)
        (Printf.sprintf "fragment %d promoted" fid)
        1
        (Odin.Session.fragment_tier tiered fid))
    (all_fids tiered);
  Alcotest.(check (list int)) "promotion queue drained" []
    (Odin.Session.pending_promotions tiered);
  (* the promoted objects are byte-for-byte the untiered session's *)
  Alcotest.(check bool) "objects bit-identical" true
    (fingerprint tiered = fingerprint untiered);
  (* ... and so is everything the VM observes, cycles included *)
  List.iter2
    (fun (rt, ct) (ru, cu) ->
      Alcotest.(check int64) "same return" ru rt;
      Alcotest.(check int) "same cycles" cu ct)
    (trace tiered) (trace untiered);
  let st = Odin.Session.tier_stats tiered in
  Alcotest.(check int) "promotions landed"
    (List.length (all_fids tiered))
    st.Odin.Session.ts_promotions;
  (* the modelled compile cost must actually separate the tiers *)
  let avg0 = st.Odin.Session.ts_tier0_cost / max 1 st.Odin.Session.ts_tier0_compiles in
  let avg1 = st.Odin.Session.ts_tier1_cost / max 1 st.Odin.Session.ts_tier1_compiles in
  Alcotest.(check bool)
    (Printf.sprintf "tier-0 cheaper per fragment (%d vs %d)" avg0 avg1)
    true (avg0 < avg1)

(* ---------------- tier-keyed object cache ---------------- *)

(* The regression the tier joined the cache key for: a tier-0 object
   must never satisfy a tier-1 lookup of the same fragment, and vice
   versa. A toggle round-trip at tier 0 hits the cache; the promotion
   of the identical IR must compile fresh. *)
let test_cache_keyed_on_tier () =
  let s = make_session ~tiered:true () in
  toggle_all s false;
  ignore (Odin.Session.refresh s);
  toggle_all s true;
  let ev_on = Option.get (Odin.Session.refresh s) in
  Alcotest.(check int) "tier-0 round-trip all cache hits"
    (List.length ev_on.Odin.Session.ev_fragments)
    ev_on.Odin.Session.ev_cache_hits;
  (* same fragments, same Shash, same opt_rounds — only the tier
     changes. A false hit would relink the baseline objects here. *)
  Odin.Session.promote s (all_fids s);
  let ev_promo = Option.get (Odin.Session.refresh s) in
  Alcotest.(check int) "promotion never hits tier-0 entries" 0
    ev_promo.Odin.Session.ev_cache_hits;
  Alcotest.(check bool) "promotion compiled fresh" true
    (List.length ev_promo.Odin.Session.ev_fragments > 0);
  Alcotest.(check bool) "promoted objects match untiered" true
    (fingerprint s = fingerprint (make_session ~tiered:false ()));
  (* demotion direction: a probe toggle on a promoted fragment compiles
     tier 0 again and must not reuse the tier-1 object *)
  toggle_all s false;
  let ev_demote = Option.get (Odin.Session.refresh s) in
  Alcotest.(check bool) "demotion tier-0 variants served from cache" true
    (ev_demote.Odin.Session.ev_cache_hits
    = List.length ev_demote.Odin.Session.ev_fragments);
  List.iter
    (fun fid ->
      Alcotest.(check int) "back at tier 0" 0 (Odin.Session.fragment_tier s fid))
    (all_fids s)

(* ---------------- promote_hot: profile-driven promotion ---------------- *)

let test_promote_hot_from_live_profile () =
  let s = make_session ~tiered:true () in
  (* profile a real execution: f4's loop dominates on large inputs *)
  let vm = Vm.create (Odin.Session.executable s) in
  let prof = Vm.enable_profile vm in
  ignore (Vm.call vm "main" [ 50L ]);
  let fn_cycles = Vm.profile_top prof in
  Alcotest.(check bool) "profile non-empty" true (fn_cycles <> []);
  let hot = Odin.Session.promote_hot ~threshold:0.05 s fn_cycles in
  Alcotest.(check bool) "hot fragments queued" true (hot <> []);
  Alcotest.(check (list int)) "queue matches return"
    (List.sort compare hot)
    (List.sort compare (Odin.Session.pending_promotions s));
  (* pure + idempotent in its input: the farm's determinism hinges on it *)
  Alcotest.(check (list int)) "second call is a no-op" []
    (Odin.Session.promote_hot ~threshold:0.05 s fn_cycles);
  (match Odin.Session.try_refresh s with
  | Some Odin.Session.Ok -> ()
  | _ -> Alcotest.fail "hot promotion refresh failed");
  List.iter
    (fun fid ->
      Alcotest.(check int)
        (Printf.sprintf "hot fragment %d at tier 1" fid)
        1
        (Odin.Session.fragment_tier s fid))
    hot;
  (* untiered sessions never promote *)
  Alcotest.(check (list int)) "untiered: no-op" []
    (Odin.Session.promote_hot (make_session ~tiered:false ()) fn_cycles)

(* ---------------- OSR: migrate vs restart ---------------- *)

let test_osr_refused_after_full_link () =
  let s = make_session ~tiered:true () in
  let vm = Vm.create (Odin.Session.executable s) in
  (* the initial build is a full link: no slot delta exists, so the
     session must refuse to migrate rather than guess *)
  Alcotest.(check bool) "osr_into refuses" false (Odin.Session.osr_into s vm);
  Alcotest.(check bool) "nothing queued" false (Vm.osr_pending vm);
  Alcotest.(check int) "no migration recorded" 0
    (Odin.Session.tier_stats s).Odin.Session.ts_osr_migrations

let test_osr_migrate_equals_restart () =
  let s = make_session ~tiered:true () in
  let old_exe = Odin.Session.executable s in
  let vm = Vm.create old_exe in
  (* a genuinely in-progress execution: globals already mutated *)
  ignore (Vm.call vm "main" [ 17L ]);
  let warm = vm.Vm.cycles in
  (* promote every helper but leave main's own fragment at tier 0, so
     the frame in flight at the migration point is identical in both
     images and the migrate-vs-restart traces must coincide exactly *)
  let main_fid = Hashtbl.find s.Odin.Session.plan.Odin.Partition.frag_of "main" in
  Odin.Session.promote s
    (List.filter (fun fid -> fid <> main_fid) (all_fids s));
  (match Odin.Session.try_refresh s with
  | Some Odin.Session.Ok -> ()
  | _ -> Alcotest.fail "promotion refresh failed");
  Alcotest.(check bool) "promotion landed as a patch" true
    (Incr.last s.Odin.Session.linker).Incr.ls_incremental;
  (* migrate the live VM; the swap lands at the next call dispatch *)
  Alcotest.(check bool) "osr_into accepts" true (Odin.Session.osr_into s vm);
  Alcotest.(check bool) "swap queued" true (Vm.osr_pending vm);
  (* the restart oracle: a fresh VM on the new image replaying the
     same history *)
  let fresh = Vm.create (Odin.Session.executable s) in
  ignore (Vm.call fresh "main" [ 17L ]);
  let fresh_warm = fresh.Vm.cycles in
  let mig_cycles = ref warm and new_cycles = ref fresh_warm in
  List.iter
    (fun x ->
      let rm = Vm.call vm "main" [ x ] in
      let rn = Vm.call fresh "main" [ x ] in
      let cm = vm.Vm.cycles - !mig_cycles in
      let cn = fresh.Vm.cycles - !new_cycles in
      mig_cycles := vm.Vm.cycles;
      new_cycles := fresh.Vm.cycles;
      Alcotest.(check int64)
        (Printf.sprintf "return identical at %Ld" x)
        rn rm;
      Alcotest.(check int)
        (Printf.sprintf "cycles identical at %Ld" x)
        cn cm)
    inputs;
  (* the swap really happened, exactly once, with a stack map *)
  Alcotest.(check bool) "swap applied" false (Vm.osr_pending vm);
  Alcotest.(check int) "one migration at the VM" 1 (Vm.osr_migrations vm);
  Alcotest.(check bool) "running on the new image" true
    (vm.Vm.exe == Odin.Session.executable s);
  (match Vm.last_stack_map vm with
  | Some sm ->
    Alcotest.(check bool) "stack map names the dispatch target" true
      (String.length sm.Vm.sm_fn > 0);
    Alcotest.(check bool) "register file captured" true
      (Array.length sm.Vm.sm_regs > 0)
  | None -> Alcotest.fail "no stack map captured");
  Alcotest.(check int) "migration counted at the session" 1
    (Odin.Session.tier_stats s).Odin.Session.ts_osr_migrations

(* ---------------- ODIN_TIER env + equivalence storm ---------------- *)

let with_env_tier v f =
  let old = Sys.getenv_opt "ODIN_TIER" in
  Unix.putenv "ODIN_TIER" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "ODIN_TIER" (Option.value ~default:"" old))
    f

let lcg seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

(* A toggle storm over a tiered session against the ODIN_TIER=0
   control: returns must agree at every round (tier-0 code is
   semantically equivalent), and once fully promoted the two must be
   bit-identical — objects, returns and cycle counts. *)
let test_env_tier_equivalence_storm () =
  let tiered = with_env_tier "1" (fun () -> make_session ()) in
  let control = with_env_tier "0" (fun () -> make_session ()) in
  Alcotest.(check bool) "ODIN_TIER=1 honoured" true (Odin.Session.tiered tiered);
  Alcotest.(check bool) "ODIN_TIER=0 honoured" false
    (Odin.Session.tiered control);
  let rand = lcg 20260809 in
  for round = 1 to 40 do
    let choices = ref [] in
    Instr.Manager.iter
      (fun p -> choices := (p.Instr.Probe.pid, rand () mod 3 = 0) :: !choices)
      tiered.Odin.Session.manager;
    let apply session =
      Instr.Manager.iter
        (fun p ->
          match List.assoc_opt p.Instr.Probe.pid !choices with
          | Some true ->
            Instr.Manager.set_enabled session.Odin.Session.manager p
              (not p.Instr.Probe.enabled)
          | _ -> ())
        session.Odin.Session.manager
    in
    apply tiered;
    apply control;
    ignore (Odin.Session.try_refresh tiered);
    ignore (Odin.Session.try_refresh control);
    if returns tiered <> returns control then
      Alcotest.failf "round %d: tiered returns diverged from ODIN_TIER=0" round
  done;
  (* the storm kept the tiered session at the baseline tier throughout *)
  Alcotest.(check bool) "storm exercised tier 0" true
    ((Odin.Session.tier_stats tiered).Odin.Session.ts_tier0_compiles > 0);
  (* full promotion closes the gap to bit-identity *)
  promote_all tiered;
  Alcotest.(check bool) "fully promoted == ODIN_TIER=0 (objects)" true
    (fingerprint tiered = fingerprint control);
  List.iter2
    (fun (rt, ct) (ru, cu) ->
      Alcotest.(check int64) "same return" ru rt;
      Alcotest.(check int) "same cycles" cu ct)
    (trace tiered) (trace control)

(* ---------------- fault matrix: torn tier-swap patch ---------------- *)

let test_torn_tier_swap_rolls_back () =
  let s = make_session ~tiered:true () in
  let before_trace = trace s in
  let before_fp = fingerprint s in
  let fids = all_fids s in
  Odin.Session.promote s fids;
  (match
     Fault.with_plan
       (Fault.plan ~seed:1 [ Fault.rule "link.patch" Fault.Torn ])
       (fun () -> Option.get (Odin.Session.try_refresh s))
   with
  | Odin.Session.Rolled_back _ -> ()
  | Odin.Session.Ok -> Alcotest.fail "torn patch went unnoticed"
  | Odin.Session.Degraded _ -> Alcotest.fail "torn patch degraded");
  Alcotest.(check int) "rollback counted" 1 (Odin.Session.rollbacks s);
  (* clean rollback to the tier-0 image: old exe serves, old objects
     intact, every fragment still at tier 0 *)
  Alcotest.(check bool) "tier-0 objects intact" true (fingerprint s = before_fp);
  List.iter2
    (fun (rb, cb) (ra, ca) ->
      Alcotest.(check int64) "old image serves" rb ra;
      Alcotest.(check int) "old image cycles" cb ca)
    before_trace (trace s);
  List.iter
    (fun fid ->
      Alcotest.(check int) "still tier 0" 0 (Odin.Session.fragment_tier s fid))
    fids;
  (* the promotion queue survived the rollback and lands cleanly now *)
  Alcotest.(check (list int)) "queue retained" fids
    (List.sort compare (Odin.Session.pending_promotions s));
  (match Odin.Session.try_refresh s with
  | Some Odin.Session.Ok -> ()
  | _ -> Alcotest.fail "clean retry failed");
  Alcotest.(check bool) "retry promoted to the untiered image" true
    (fingerprint s = fingerprint (make_session ~tiered:false ()))

(* ---------------- farm: promotion determinism ---------------- *)

let tiny = Workloads.Profile.tiny
let entry = Fuzzer.Campaign.entry
let seeds = Workloads.Generate.seed_inputs ~count:2 tiny

let farm_cfg workers =
  {
    Farm.default_config with
    Farm.fc_workers = workers;
    fc_execs = 60;
    fc_sync_interval = 20;
    fc_prune_quorum = 1;
    fc_promote_share = 0.01;
  }

let logical st =
  ( st.Farm.fs_coverage,
    st.Farm.fs_pruned,
    st.Farm.fs_corpus,
    st.Farm.fs_execs,
    st.Farm.fs_total_cycles )

let counter_total (r : Telemetry.Recorder.t) name =
  List.fold_left
    (fun acc c ->
      if Telemetry.Metrics.counter_name c = name then
        acc + Telemetry.Metrics.value c
      else acc)
    0
    (Telemetry.Metrics.counters r.Telemetry.Recorder.metrics)

let test_farm_promotion_determinism () =
  let m = Workloads.Generate.compile tiny in
  let run_domains workers =
    let telemetry = Telemetry.Recorder.create () in
    let st = Farm.run ~telemetry ~pool:Pool.serial ~entry ~seeds (farm_cfg workers) m in
    (logical st, counter_total telemetry "farm.tier_promotions")
  in
  let base, promotions = run_domains 1 in
  (* the campaign must actually exercise tiered workers *)
  Alcotest.(check bool)
    (Printf.sprintf "promotions happened (%d)" promotions)
    true (promotions > 0);
  List.iter
    (fun w ->
      let st, p = run_domains w in
      Alcotest.(check bool)
        (Printf.sprintf "domains w=%d bit-identical to w=1" w)
        true (st = base);
      Alcotest.(check int)
        (Printf.sprintf "domains w=%d same promotion count" w)
        promotions p)
    [ 2; 4 ];
  (* the process driver reaches the same promotion set: the merged
     profile travels in the Assign frame and promote_hot is pure *)
  List.iter
    (fun w ->
      let st =
        Farm.Proc.run ~worker_argv ~entry ~seeds (farm_cfg w) m
      in
      Alcotest.(check bool)
        (Printf.sprintf "procs w=%d bit-identical to domains w=1" w)
        true (logical st = base))
    [ 2 ]

(* a promote-share of zero must leave the farm byte-identical to the
   pre-tier code path *)
let test_farm_share_zero_untiered () =
  let m = Workloads.Generate.compile tiny in
  let run share =
    let cfg = { (farm_cfg 2) with Farm.fc_promote_share = share } in
    logical (Farm.run ~pool:Pool.serial ~entry ~seeds cfg m)
  in
  let untiered = run 0.0 in
  (* share 0 twice: trivially stable *)
  Alcotest.(check bool) "share=0 reproducible" true (run 0.0 = untiered)

let () =
  Alcotest.run "tier"
    [
      ( "baseline",
        [
          Alcotest.test_case "tiered session starts at tier 0" `Quick
            test_tier0_starts_baseline;
          Alcotest.test_case "untiered session is all tier 1" `Quick
            test_untiered_session_all_tier1;
        ] );
      ( "promotion",
        [
          Alcotest.test_case "full promotion bit-identical to untiered" `Quick
            test_full_promotion_bit_identical;
          Alcotest.test_case "object cache keyed on tier" `Quick
            test_cache_keyed_on_tier;
          Alcotest.test_case "promote_hot from a live profile" `Quick
            test_promote_hot_from_live_profile;
        ] );
      ( "osr",
        [
          Alcotest.test_case "refused after a full link" `Quick
            test_osr_refused_after_full_link;
          Alcotest.test_case "migrate == restart" `Quick
            test_osr_migrate_equals_restart;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "ODIN_TIER storm, 40 rounds" `Slow
            test_env_tier_equivalence_storm;
        ] );
      ( "faults",
        [
          Alcotest.test_case "torn tier-swap patch rolls back" `Quick
            test_torn_tier_swap_rolls_back;
        ] );
      ( "farm",
        [
          Alcotest.test_case "promotion determinism, domains 1/2/4 + procs"
            `Slow test_farm_promotion_determinism;
          Alcotest.test_case "share 0 stays untiered" `Quick
            test_farm_share_zero_untiered;
        ] );
    ]
