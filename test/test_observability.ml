(* The observability layer: BENCH snapshot round-trips, the
   tolerance-classed diff engine behind [odinc bench-diff], the
   crash-safe campaign journal (bounded window, truncation recovery),
   atomic file publication, and the headline per-probe cost
   attribution contract — [fs_probe_cost] is bit-identical across
   --workers 1/2/4, like every other logical farm result. *)

module Snap = Telemetry.Snapshot
module Journal = Telemetry.Journal
module Json = Telemetry.Json
module Fsio = Support.Fsio
module Pool = Support.Pool

let vclock ?(step = 1.0) () = Telemetry.Clock.virtual_clock ~step ()

let tmpdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "odin-obs-%d" (Unix.getpid ()))
  in
  Fsio.mkdir_p d;
  d

(* ---------------- snapshot round-trip ---------------------------------- *)

let sample_snapshot () =
  Snap.create ~section:"parallel"
    ~meta:[ ("git", "abc123def456"); ("jobs", "4"); ("mode", "quick") ]
    [
      Snap.metric ~unit_:"ms" ~cls:Snap.Wall "jobs1.cold_ms" 12.5;
      Snap.metric ~unit_:"cycles" ~cls:Snap.Cost "jobs1.cost" 4096.;
      Snap.metric ~cls:Snap.Exact "jobs1.compiled_cold" 17.;
      Snap.metric "default_pool_size" 8.;
    ]

let test_snapshot_roundtrip () =
  let s = sample_snapshot () in
  (match Snap.parse (Snap.render s) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s' ->
    Alcotest.(check bool) "render/parse round-trip" true (s = s'));
  let path = Snap.write ~dir:tmpdir s in
  Alcotest.(check string)
    "filename convention"
    (Filename.concat tmpdir "BENCH_parallel.json")
    path;
  (match Snap.read path with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok s' -> Alcotest.(check bool) "write/read round-trip" true (s = s'));
  (* atomic publication leaves no staging files behind *)
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "no temp file left (%s)" f)
        false
        (Filename.check_suffix f ".tmp"))
    (Sys.readdir tmpdir)

let test_snapshot_rejects_garbage () =
  let bad s =
    match Snap.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (bad "not json at all");
  Alcotest.(check bool) "wrong shape" true (bad "[1,2,3]");
  Alcotest.(check bool) "missing fields" true (bad "{\"schema\":1}")

(* ---------------- diff tolerance boundaries ---------------------------- *)

let snap_of metrics = Snap.create ~section:"t" metrics

let one_verdict ?ignore_classes base cur =
  let baseline = snap_of [ base ] and current = snap_of [ cur ] in
  match Snap.diff ?ignore_classes ~baseline ~current () with
  | [ e ] -> e.Snap.d_verdict
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

let verdict =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with Snap.Pass -> "pass" | Warn -> "warn" | Fail -> "fail"))
    ( = )

let test_diff_boundaries () =
  let m cls v = Snap.metric ~cls "m" v in
  let check name exp base cur =
    Alcotest.check verdict name exp (one_verdict base cur)
  in
  (* cost: warn over +2%, fail over +10% *)
  check "cost +1% passes" Snap.Pass (m Snap.Cost 100.) (m Snap.Cost 101.);
  check "cost +5% warns" Snap.Warn (m Snap.Cost 100.) (m Snap.Cost 105.);
  check "cost +15% fails" Snap.Fail (m Snap.Cost 100.) (m Snap.Cost 115.);
  (* wall: warn over +10%, fail over +15% — the acceptance bar: a 20%
     wall regression must gate *)
  check "wall +5% passes" Snap.Pass (m Snap.Wall 100.) (m Snap.Wall 105.);
  check "wall +12% warns" Snap.Warn (m Snap.Wall 100.) (m Snap.Wall 112.);
  check "wall +20% fails" Snap.Fail (m Snap.Wall 100.) (m Snap.Wall 120.);
  (* improvements pass for banded classes *)
  check "wall -30% passes" Snap.Pass (m Snap.Wall 100.) (m Snap.Wall 70.);
  (* exact: any drift fails, either direction *)
  check "exact equal passes" Snap.Pass (m Snap.Exact 42.) (m Snap.Exact 42.);
  check "exact +1 fails" Snap.Fail (m Snap.Exact 42.) (m Snap.Exact 43.);
  check "exact -1 fails" Snap.Fail (m Snap.Exact 42.) (m Snap.Exact 41.);
  (* info never gates *)
  check "info 5x passes" Snap.Pass (m Snap.Info 10.) (m Snap.Info 50.);
  (* zero baseline: infinite drift still classifies *)
  check "wall from zero fails" Snap.Fail (m Snap.Wall 0.) (m Snap.Wall 5.)

let test_diff_missing_and_new () =
  let base = snap_of [ Snap.metric ~cls:Snap.Exact "gone" 1. ] in
  let cur = snap_of [ Snap.metric ~cls:Snap.Exact "born" 2. ] in
  let entries = Snap.diff ~baseline:base ~current:cur () in
  let by_name n = List.find (fun e -> e.Snap.d_name = n) entries in
  Alcotest.check verdict "dropped gated metric fails" Snap.Fail
    (by_name "gone").Snap.d_verdict;
  Alcotest.check verdict "new metric passes" Snap.Pass
    (by_name "born").Snap.d_verdict;
  Alcotest.check verdict "worst is fail" Snap.Fail (Snap.worst entries);
  (* a missing Info metric never gates *)
  let base_i = snap_of [ Snap.metric "fyi" 1. ] in
  let entries = Snap.diff ~baseline:base_i ~current:(snap_of []) () in
  Alcotest.check verdict "missing info metric passes" Snap.Pass
    (Snap.worst entries)

let test_diff_ignore_classes () =
  let m cls v = Snap.metric ~cls "m" v in
  Alcotest.check verdict "wall regression, wall ignored"
    Snap.Pass
    (one_verdict ~ignore_classes:[ Snap.Wall ] (m Snap.Wall 100.)
       (m Snap.Wall 200.));
  (* ignoring a class also exempts its missing metrics *)
  let base = snap_of [ Snap.metric ~cls:Snap.Wall "w" 1. ] in
  let entries =
    Snap.diff ~ignore_classes:[ Snap.Wall ] ~baseline:base
      ~current:(snap_of []) ()
  in
  Alcotest.check verdict "missing ignored metric passes" Snap.Pass
    (Snap.worst entries);
  Alcotest.check verdict "empty diff passes" Snap.Pass (Snap.worst [])

(* ---------------- journal ---------------------------------------------- *)

let mkjournal ?limit () = Journal.create ?limit ~clock:(vclock ()) ()

let test_journal_window () =
  let j = mkjournal ~limit:4 () in
  for i = 1 to 10 do
    Journal.record j ~kind:"tick" [ ("i", Json.Int i) ]
  done;
  Alcotest.(check int) "window length" 4 (Journal.length j);
  Alcotest.(check int) "dropped count" 6 (Journal.dropped j);
  let seqs = List.map (fun e -> e.Journal.e_seq) (Journal.events j) in
  Alcotest.(check (list int)) "oldest dropped, order kept" [ 6; 7; 8; 9 ] seqs;
  let is = List.filter_map (fun e -> Journal.field_int e "i") (Journal.events j) in
  Alcotest.(check (list int)) "fields survive" [ 7; 8; 9; 10 ] is

let test_journal_flush_load () =
  let j = mkjournal () in
  Journal.record j ~kind:"farm.sync"
    [ ("round", Json.Int 1); ("coverage", Json.Int 5) ];
  Journal.record j ~kind:"probe.cost"
    [ ("pid", Json.Int 0); ("cycles", Json.Int 99) ];
  let path = Filename.concat tmpdir "journal.jsonl" in
  Journal.flush j path;
  let l = Journal.load path in
  Alcotest.(check int) "all events load" 2 (List.length l.Journal.l_events);
  Alcotest.(check int) "nothing skipped" 0 l.Journal.l_skipped;
  Alcotest.(check int) "nothing dropped" 0 l.Journal.l_dropped;
  let e = List.nth l.Journal.l_events 1 in
  Alcotest.(check string) "kind survives" "probe.cost" e.Journal.e_kind;
  Alcotest.(check (option int)) "field survives" (Some 99)
    (Journal.field_int e "cycles")

let test_journal_truncation_recovery () =
  (* a crash mid-write leaves a torn last line; load must recover the
     intact prefix and count the damage rather than fail *)
  let j = mkjournal ~limit:8 () in
  for i = 1 to 12 do
    Journal.record j ~kind:"tick" [ ("i", Json.Int i) ]
  done;
  let path = Filename.concat tmpdir "torn.jsonl" in
  Journal.flush j path;
  let full = Fsio.read_file path in
  let torn = String.sub full 0 (String.length full - 7) in
  let oc = open_out_bin path in
  output_string oc torn;
  close_out oc;
  let l = Journal.load path in
  Alcotest.(check int) "torn tail skipped" 1 l.Journal.l_skipped;
  Alcotest.(check int) "intact prefix loads" 7 (List.length l.Journal.l_events);
  Alcotest.(check int) "header dropped count survives" 4 l.Journal.l_dropped;
  let seqs = List.map (fun e -> e.Journal.e_seq) l.Journal.l_events in
  Alcotest.(check (list int)) "prefix in order" [ 4; 5; 6; 7; 8; 9; 10 ] seqs

(* ---------------- atomic publication ----------------------------------- *)

let test_write_atomic () =
  let path = Filename.concat tmpdir "atomic.txt" in
  Fsio.write_atomic path "first";
  Fsio.write_atomic path "second";
  Alcotest.(check string) "overwrite publishes" "second" (Fsio.read_file path);
  Fsio.write_atomic_with path (fun b -> Buffer.add_string b "third");
  Alcotest.(check string) "buffer variant" "third" (Fsio.read_file path);
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "no staging residue (%s)" f)
        false
        (Filename.check_suffix f ".tmp"))
    (Sys.readdir tmpdir)

(* ---------------- per-probe attribution determinism -------------------- *)

let tiny = Workloads.Profile.tiny
let entry = Fuzzer.Campaign.entry
let seeds = Workloads.Generate.seed_inputs ~count:2 tiny

let run_farm ?(workers = 1) ?(pool = Pool.serial) ?journal ?journal_path () =
  let m = Workloads.Generate.compile tiny in
  let cfg =
    {
      Farm.default_config with
      Farm.fc_workers = workers;
      fc_execs = 60;
      fc_sync_interval = 20;
      fc_prune_quorum = 1;
    }
  in
  Farm.run ~pool ?journal ?journal_path ~entry ~seeds cfg m

let pc_row p =
  ( p.Farm.pc_pid,
    p.Farm.pc_toggles,
    p.Farm.pc_execs_armed,
    p.Farm.pc_hits,
    p.Farm.pc_cycles )

let test_attribution_invariance () =
  let sts = List.map (fun w -> run_farm ~workers:w ()) [ 1; 2; 4 ] in
  let base = List.hd sts in
  let rows st = List.map pc_row st.Farm.fs_probe_cost in
  List.iteri
    (fun i st ->
      Alcotest.(check bool)
        (Printf.sprintf "probe cost identical (w=%d)" (List.nth [ 1; 2; 4 ] i))
        true
        (rows base = rows st))
    sts;
  (* shape: one row per probe, ascending by pid *)
  Alcotest.(check int) "one row per probe" base.Farm.fs_total_probes
    (List.length base.Farm.fs_probe_cost);
  Alcotest.(check (list int)) "ascending pids"
    (List.init base.Farm.fs_total_probes Fun.id)
    (List.map (fun p -> p.Farm.pc_pid) base.Farm.fs_probe_cost);
  (* substance: the campaign found coverage, so something was hit and
     charged cycles; pruned probes were toggled off *)
  Alcotest.(check bool) "some probe hit" true
    (List.exists (fun p -> p.Farm.pc_hits > 0) base.Farm.fs_probe_cost);
  Alcotest.(check bool) "hits imply cycles" true
    (List.for_all
       (fun p -> (p.Farm.pc_hits > 0) = (p.Farm.pc_cycles > 0))
       base.Farm.fs_probe_cost);
  List.iter
    (fun pid ->
      let p = List.nth base.Farm.fs_probe_cost pid in
      Alcotest.(check bool)
        (Printf.sprintf "pruned probe %d toggled" pid)
        true (p.Farm.pc_toggles > 0))
    base.Farm.fs_pruned

let test_attribution_on_domains () =
  (* same contract when slots really run on ODIN_JOBS-style domains *)
  let pool = Pool.create ~size:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let a = run_farm ~workers:1 () in
  let b = run_farm ~workers:4 ~pool () in
  Alcotest.(check bool) "serial = domain pool" true
    (List.map pc_row a.Farm.fs_probe_cost = List.map pc_row b.Farm.fs_probe_cost)

let test_journal_from_farm () =
  let path = Filename.concat tmpdir "farm.jsonl" in
  let st = run_farm ~workers:2 ~journal_path:path () in
  let l = Journal.load path in
  Alcotest.(check int) "no torn lines" 0 l.Journal.l_skipped;
  let kinds = List.map (fun e -> e.Journal.e_kind) l.Journal.l_events in
  Alcotest.(check bool) "sync events" true (List.mem "farm.sync" kinds);
  Alcotest.(check bool) "counter events" true (List.mem "counters" kinds);
  Alcotest.(check bool) "final summary" true (List.mem "farm.done" kinds);
  let costs =
    List.filter (fun e -> e.Journal.e_kind = "probe.cost") l.Journal.l_events
  in
  Alcotest.(check int) "one cost event per probe" st.Farm.fs_total_probes
    (List.length costs);
  (* journal rows mirror fs_probe_cost exactly *)
  List.iter2
    (fun e p ->
      Alcotest.(check (option int)) "pid" (Some p.Farm.pc_pid)
        (Journal.field_int e "pid");
      Alcotest.(check (option int)) "toggles" (Some p.Farm.pc_toggles)
        (Journal.field_int e "toggles");
      Alcotest.(check (option int)) "execs_armed" (Some p.Farm.pc_execs_armed)
        (Journal.field_int e "execs_armed");
      Alcotest.(check (option int)) "hits" (Some p.Farm.pc_hits)
        (Journal.field_int e "hits");
      Alcotest.(check (option int)) "cycles" (Some p.Farm.pc_cycles)
        (Journal.field_int e "cycles"))
    costs st.Farm.fs_probe_cost;
  (* the final farm.done event carries the logical results *)
  let dones =
    List.filter (fun e -> e.Journal.e_kind = "farm.done") l.Journal.l_events
  in
  let d = List.nth dones (List.length dones - 1) in
  Alcotest.(check (option int)) "execs" (Some st.Farm.fs_execs)
    (Journal.field_int d "execs");
  Alcotest.(check (option int)) "coverage" (Some (List.length st.Farm.fs_coverage))
    (Journal.field_int d "coverage")

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "observability"
    [
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_snapshot_rejects_garbage;
        ] );
      ( "diff",
        [
          Alcotest.test_case "tolerance boundaries" `Quick test_diff_boundaries;
          Alcotest.test_case "missing and new metrics" `Quick
            test_diff_missing_and_new;
          Alcotest.test_case "ignore classes" `Quick test_diff_ignore_classes;
        ] );
      ( "journal",
        [
          Alcotest.test_case "bounded window" `Quick test_journal_window;
          Alcotest.test_case "flush and load" `Quick test_journal_flush_load;
          Alcotest.test_case "truncation recovery" `Quick
            test_journal_truncation_recovery;
        ] );
      ( "fsio",
        [ Alcotest.test_case "atomic publication" `Quick test_write_atomic ] );
      ( "attribution",
        [
          Alcotest.test_case "invariant across workers" `Quick
            test_attribution_invariance;
          Alcotest.test_case "invariant on domain pool" `Quick
            test_attribution_on_domains;
          Alcotest.test_case "journal mirrors stats" `Quick
            test_journal_from_farm;
        ] );
    ]
