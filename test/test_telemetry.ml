(* Tests for the telemetry subsystem: span nesting/ordering under an
   injectable virtual clock, histogram percentile edge cases, a Chrome
   trace_event JSON round-trip through a minimal parser, and the
   determinism of counter output across identical Session builds. *)

let feq = Alcotest.float 1e-9

let virtual_recorder ?(step = 1.0) () =
  Telemetry.Recorder.create ~clock:(Telemetry.Clock.virtual_clock ~step ()) ()

(* ---------------- clock ---------------- *)

let test_virtual_clock_steps () =
  let c = Telemetry.Clock.virtual_clock ~start:10. ~step:0.5 () in
  Alcotest.(check feq) "first" 10. (c ());
  Alcotest.(check feq) "second" 10.5 (c ());
  Alcotest.(check feq) "third" 11. (c ())

let test_fixed_clock () =
  let c = Telemetry.Clock.fixed 3. in
  Alcotest.(check feq) "always" 3. (c ());
  Alcotest.(check feq) "still" 3. (c ())

(* ---------------- spans ---------------- *)

(* Clock reads are one per enter and one per exit, so with step=1 the
   timeline is fully predictable: outer opens at 0, inner spans 1..2,
   outer closes at 3. *)
let test_span_nesting_and_durations () =
  let r = virtual_recorder () in
  Telemetry.Recorder.with_span r "outer" (fun () ->
      Telemetry.Recorder.with_span r "inner" (fun () -> ()));
  match Telemetry.Span.roots r.Telemetry.Recorder.spans with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" (Telemetry.Span.name outer);
    Alcotest.(check feq) "outer start" 0. (Telemetry.Span.start outer);
    Alcotest.(check feq) "outer dur" 3. (Telemetry.Span.duration outer);
    (match Telemetry.Span.children outer with
    | [ inner ] ->
      Alcotest.(check string) "child name" "inner" (Telemetry.Span.name inner);
      Alcotest.(check feq) "inner start" 1. (Telemetry.Span.start inner);
      Alcotest.(check feq) "inner dur" 1. (Telemetry.Span.duration inner)
    | l -> Alcotest.failf "one child expected, got %d" (List.length l))
  | l -> Alcotest.failf "one root expected, got %d" (List.length l)

let test_span_sibling_order () =
  let r = virtual_recorder () in
  Telemetry.Recorder.with_span r "parent" (fun () ->
      List.iter
        (fun n -> Telemetry.Recorder.with_span r n (fun () -> ()))
        [ "a"; "b"; "c" ]);
  let parent = List.hd (Telemetry.Span.roots r.Telemetry.Recorder.spans) in
  Alcotest.(check (list string)) "chronological children" [ "a"; "b"; "c" ]
    (List.map Telemetry.Span.name (Telemetry.Span.children parent));
  (* preorder iteration visits parent then children, depths 0/1 *)
  let visited = ref [] in
  Telemetry.Span.iter r.Telemetry.Recorder.spans (fun ~depth sp ->
      visited := (depth, Telemetry.Span.name sp) :: !visited);
  Alcotest.(check (list (pair int string)))
    "preorder"
    [ (0, "parent"); (1, "a"); (1, "b"); (1, "c") ]
    (List.rev !visited)

let test_span_exception_safety () =
  let r = virtual_recorder () in
  (try
     Telemetry.Recorder.with_span r "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  match Telemetry.Span.roots r.Telemetry.Recorder.spans with
  | [ sp ] ->
    Alcotest.(check bool) "closed despite raise" true
      (Telemetry.Span.duration sp > 0.)
  | _ -> Alcotest.fail "span not recorded"

let test_span_exit_closes_descendants () =
  let r = virtual_recorder () in
  let spans = r.Telemetry.Recorder.spans in
  let outer = Telemetry.Span.enter spans "outer" in
  let _inner = Telemetry.Span.enter spans "inner" in
  (* exiting the outer span must defensively close the forgotten inner *)
  Telemetry.Span.exit spans outer;
  let inner = List.hd (Telemetry.Span.children outer) in
  Alcotest.(check bool) "inner closed" true (Telemetry.Span.duration inner > 0.);
  Alcotest.(check bool) "inner within outer" true
    (Telemetry.Span.duration inner <= Telemetry.Span.duration outer)

let test_span_total_aggregates () =
  let r = virtual_recorder () in
  Telemetry.Recorder.with_span r "pass" (fun () -> ());
  Telemetry.Recorder.with_span r "pass" (fun () -> ());
  let spans = r.Telemetry.Recorder.spans in
  Alcotest.(check int) "find_all" 2
    (List.length (Telemetry.Span.find_all spans "pass"));
  Alcotest.(check feq) "total" 2. (Telemetry.Span.total spans "pass")

(* ---------------- histograms ---------------- *)

let test_histogram_empty () =
  let h = Telemetry.Histogram.create () in
  Alcotest.(check int) "count" 0 (Telemetry.Histogram.count h);
  Alcotest.(check bool) "p50 nan" true
    (Float.is_nan (Telemetry.Histogram.p50 h));
  Alcotest.(check bool) "p99 nan" true
    (Float.is_nan (Telemetry.Histogram.p99 h));
  Alcotest.(check bool) "mean nan" true
    (Float.is_nan (Telemetry.Histogram.mean h))

let test_histogram_single_sample () =
  let h = Telemetry.Histogram.create () in
  Telemetry.Histogram.observe h 7.;
  List.iter
    (fun p ->
      Alcotest.(check feq)
        (Printf.sprintf "p%.0f" p)
        7.
        (Telemetry.Histogram.percentile h p))
    [ 0.; 50.; 90.; 99.; 100. ]

let test_histogram_percentiles () =
  let h = Telemetry.Histogram.create () in
  List.iter (Telemetry.Histogram.observe h) [ 40.; 10.; 30.; 20. ];
  Alcotest.(check feq) "p50 interpolates" 25. (Telemetry.Histogram.p50 h);
  Alcotest.(check feq) "min" 10. (Telemetry.Histogram.min_v h);
  Alcotest.(check feq) "max" 40. (Telemetry.Histogram.max_v h);
  Alcotest.(check feq) "mean" 25. (Telemetry.Histogram.mean h);
  Alcotest.(check feq) "sum" 100. (Telemetry.Histogram.sum h);
  Alcotest.(check (list feq)) "observation order" [ 40.; 10.; 30.; 20. ]
    (Telemetry.Histogram.samples h)

(* ---------------- minimal JSON parser (for the round-trip test) ----- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (pos := !pos + String.length word; v)
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'u' ->
          advance ();
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
        | Some c -> Buffer.add_char b c; advance ()
        | None -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      advance ()
    done;
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "bad object"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "bad array"
        in
        elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "eof"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc k kvs
  | _ -> raise (Parse_error ("no member " ^ k))

let member_opt k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> s | _ -> raise (Parse_error "not a string")
let num = function Num f -> f | _ -> raise (Parse_error "not a number")

(* ---------------- Chrome trace round-trip ---------------- *)

let test_trace_round_trip () =
  let r = virtual_recorder () in
  let cov =
    Telemetry.Metrics.counter r.Telemetry.Recorder.metrics ~series:true
      "coverage"
  in
  Telemetry.Recorder.with_span r ~cat:"session" "rebuild" (fun () ->
      Telemetry.Recorder.with_span r ~cat:"session"
        ~args:[ ("fid", "0") ]
        "fragment"
        (fun () -> Telemetry.Metrics.incr ~by:3 cov));
  let doc = parse_json (Telemetry.Trace.to_json ~process_name:"test" r) in
  let events =
    match member "traceEvents" doc with
    | List l -> l
    | _ -> Alcotest.fail "traceEvents not a list"
  in
  let with_ph p =
    List.filter (fun e -> str (member "ph" e) = p) events
  in
  (* metadata names the process *)
  (match with_ph "M" with
  | [ m ] ->
    Alcotest.(check string) "process_name" "process_name" (str (member "name" m));
    Alcotest.(check string) "process" "test"
      (str (member "name" (member "args" m)))
  | _ -> Alcotest.fail "exactly one metadata event expected");
  (* complete events: every span, with microsecond ts/dur and interval
     containment expressing the nesting *)
  (match with_ph "X" with
  | [ rebuild; fragment ] ->
    Alcotest.(check string) "outer first" "rebuild" (str (member "name" rebuild));
    Alcotest.(check string) "inner second" "fragment"
      (str (member "name" fragment));
    Alcotest.(check string) "cat" "session" (str (member "cat" rebuild));
    Alcotest.(check string) "args survive" "0"
      (str (member "fid" (member "args" fragment)));
    let t0 = num (member "ts" rebuild) and d0 = num (member "dur" rebuild) in
    let t1 = num (member "ts" fragment) and d1 = num (member "dur" fragment) in
    Alcotest.(check feq) "trace starts at 0" 0. t0;
    Alcotest.(check bool) "child starts inside parent" true (t1 >= t0);
    Alcotest.(check bool) "child ends inside parent" true (t1 +. d1 <= t0 +. d0);
    (* virtual clock: child opened one tick after parent *)
    Alcotest.(check feq) "microseconds" 1e6 t1
  | l -> Alcotest.failf "two complete events expected, got %d" (List.length l));
  (* the series counter renders as a counter track *)
  (match with_ph "C" with
  | [ c ] ->
    Alcotest.(check string) "counter name" "coverage" (str (member "name" c));
    Alcotest.(check string) "counter value" "3"
      (str (member "value" (member "args" c)))
  | l -> Alcotest.failf "one counter event expected, got %d" (List.length l));
  (* every event carries the four official keys *)
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("has " ^ k) true (member_opt k e <> None))
        [ "name"; "ph"; "ts"; "pid" ])
    events

(* ---------------- determinism across identical builds ---------------- *)

let session_src =
  {|
extern int printf(char *fmt);
static int n;
static int add(int x) { n = n + x; return n; }
static int twice(int x) { return add(x) + add(x); }
int main(void) { printf("go\n"); return twice(3); }
|}

(* Pinned to the serial pool: this test asserts byte-identical span
   *timings* under a virtual clock, and with >1 domain the interleaving
   of clock reads is scheduler-dependent. Bit-identical *executables*
   across pool sizes are asserted by test_parallel.ml. *)
let build_once () =
  let r = virtual_recorder () in
  let m = Minic.Lower.compile session_src in
  let session =
    Odin.Session.create ~keep:[ "main" ] ~host:[ "printf"; "puts" ]
      ~pool:Support.Pool.serial ~telemetry:r m
  in
  ignore (Odin.Session.build session);
  (r, session)

let test_session_build_deterministic () =
  let r1, s1 = build_once () in
  let r2, s2 = build_once () in
  (* counters: same registry, same values, same render *)
  Alcotest.(check string) "metrics render"
    (Telemetry.Metrics.render r1.Telemetry.Recorder.metrics)
    (Telemetry.Metrics.render r2.Telemetry.Recorder.metrics);
  (* spans: identical tree under the virtual clock, so the whole trace
     export is byte-identical *)
  Alcotest.(check string) "trace json"
    (Telemetry.Trace.to_json r1)
    (Telemetry.Trace.to_json r2);
  (* and telemetry never perturbs the build: same executables *)
  let run s =
    let vm = Vm.create (Odin.Session.executable s) in
    List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L)) [ "printf"; "puts" ];
    let ret = Vm.call vm "main" [] in
    (ret, vm.Vm.cycles)
  in
  let ret1, cyc1 = run s1 and ret2, cyc2 = run s2 in
  Alcotest.(check int64) "same result" ret1 ret2;
  Alcotest.(check int) "same cycles" cyc1 cyc2

let test_telemetry_does_not_perturb () =
  (* a session with no recorder produces the same executable behaviour *)
  let with_t =
    let r = virtual_recorder () in
    let m = Minic.Lower.compile session_src in
    let s =
      Odin.Session.create ~keep:[ "main" ] ~host:[ "printf"; "puts" ] ~telemetry:r m
    in
    ignore (Odin.Session.build s);
    s
  in
  let without_t =
    let m = Minic.Lower.compile session_src in
    let s = Odin.Session.create ~keep:[ "main" ] ~host:[ "printf"; "puts" ] m in
    ignore (Odin.Session.build s);
    s
  in
  let run s =
    let vm = Vm.create (Odin.Session.executable s) in
    List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L)) [ "printf"; "puts" ];
    let ret = Vm.call vm "main" [] in
    (ret, vm.Vm.cycles)
  in
  let ret_t, cyc_t = run with_t and ret_n, cyc_n = run without_t in
  Alcotest.(check int64) "same result" ret_t ret_n;
  Alcotest.(check int) "same cycles" cyc_t cyc_n

(* ---------------- metrics ---------------- *)

let test_counter_find_or_create () =
  let m = Telemetry.Metrics.create () in
  let a = Telemetry.Metrics.counter m ~labels:[ ("pass", "dce") ] "changed" in
  let b = Telemetry.Metrics.counter m ~labels:[ ("pass", "dce") ] "changed" in
  let c = Telemetry.Metrics.counter m ~labels:[ ("pass", "gvn") ] "changed" in
  Telemetry.Metrics.incr a;
  Telemetry.Metrics.incr ~by:2 b;
  Telemetry.Metrics.incr c;
  Alcotest.(check int) "same handle accumulates" 3 (Telemetry.Metrics.value a);
  Alcotest.(check int) "labels distinguish" 1 (Telemetry.Metrics.value c);
  Alcotest.(check int) "registry size" 2
    (List.length (Telemetry.Metrics.counters m))

let test_counter_series () =
  let m = Telemetry.Metrics.create ~clock:(Telemetry.Clock.virtual_clock ~step:1. ()) () in
  let c = Telemetry.Metrics.counter m ~series:true "cov" in
  Telemetry.Metrics.incr ~by:2 c;
  Telemetry.Metrics.incr ~by:3 c;
  match Telemetry.Metrics.series c with
  | [ (t1, v1); (t2, v2) ] ->
    Alcotest.(check bool) "chronological" true (t1 < t2);
    Alcotest.(check int) "cumulative first" 2 v1;
    Alcotest.(check int) "cumulative second" 5 v2
  | l -> Alcotest.failf "two samples expected, got %d" (List.length l)

let () =
  Alcotest.run "telemetry"
    [
      ( "clock",
        [
          Alcotest.test_case "virtual steps" `Quick test_virtual_clock_steps;
          Alcotest.test_case "fixed" `Quick test_fixed_clock;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting + durations" `Quick
            test_span_nesting_and_durations;
          Alcotest.test_case "sibling order" `Quick test_span_sibling_order;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "exit closes descendants" `Quick
            test_span_exit_closes_descendants;
          Alcotest.test_case "find_all/total" `Quick test_span_total_aggregates;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "single sample" `Quick test_histogram_single_sample;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "find-or-create" `Quick test_counter_find_or_create;
          Alcotest.test_case "series" `Quick test_counter_series;
        ] );
      ( "trace",
        [ Alcotest.test_case "chrome round-trip" `Quick test_trace_round_trip ] );
      ( "determinism",
        [
          Alcotest.test_case "identical builds, identical telemetry" `Quick
            test_session_build_deterministic;
          Alcotest.test_case "telemetry does not perturb" `Quick
            test_telemetry_does_not_perturb;
        ] );
    ]
