(* Tests for the evaluation substrate: workload generation, baselines
   (SanitizerCoverage / DrCov / libInst), the fuzzer, the campaign
   methodology, and the build-cost model. These validate the properties
   the figures rely on — e.g. that every tool observes the same coverage
   facts, that overheads are ordered the way the paper reports, and that
   the corpus is deterministic. *)

let tiny = Workloads.Profile.tiny

(* ---------------- workload generation ---------------- *)

let test_workload_deterministic () =
  let s1 = Workloads.Generate.source tiny in
  let s2 = Workloads.Generate.source tiny in
  Alcotest.(check string) "same source" s1 s2

let test_workload_compiles () =
  List.iter
    (fun (p : Workloads.Profile.t) ->
      let m = Workloads.Generate.compile p in
      Alcotest.(check int)
        (p.Workloads.Profile.name ^ " verifies")
        0
        (List.length (Ir.Verify.check_module m));
      Alcotest.(check bool)
        (p.Workloads.Profile.name ^ " has entry")
        true
        (Ir.Modul.find_func m "target_main" <> None))
    Workloads.Profile.all

let test_workload_runs_on_vm () =
  let m = Workloads.Generate.compile tiny in
  let exe =
    Baselines.Plain.build ~keep:[ "target_main" ]
      ~host:Workloads.Generate.host_functions m
  in
  List.iter
    (fun input ->
      let vm = Vm.create exe in
      List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L))
        Workloads.Generate.host_functions;
      let addr = Vm.write_buffer vm input in
      (* must terminate and produce a value *)
      ignore (Vm.call vm "target_main" [ addr; Int64.of_int (String.length input) ]))
    (Workloads.Generate.seed_inputs tiny)

let test_workload_vm_matches_interp () =
  (* the synthetic program means the same thing to the reference
     interpreter and to compiled optimized code *)
  let input = List.hd (Workloads.Generate.seed_inputs tiny) in
  let m1 = Workloads.Generate.compile tiny in
  let st = Ir.Interp.create m1 in
  List.iter
    (fun n -> Ir.Interp.register_host st n (fun _ _ -> 0L))
    Workloads.Generate.host_functions;
  let addr = Ir.Interp.alloc_input st input in
  let expected = Ir.Interp.run st "target_main" [ addr; Int64.of_int (String.length input) ] in
  let m2 = Workloads.Generate.compile tiny in
  let exe =
    Baselines.Plain.build ~keep:[ "target_main" ]
      ~host:Workloads.Generate.host_functions m2
  in
  let vm = Vm.create exe in
  List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L))
    Workloads.Generate.host_functions;
  let vaddr = Vm.write_buffer vm input in
  let got = Vm.call vm "target_main" [ vaddr; Int64.of_int (String.length input) ] in
  Alcotest.(check int64) "same result" expected got

(* ---------------- mutators ---------------- *)

let test_mutators_total () =
  let rng = Support.Rng.create 5 in
  let s = "hello fuzzing world" in
  for _ = 1 to 200 do
    let m = Fuzzer.Mutate.havoc rng ~pool:[ s; "other" ] s in
    Alcotest.(check bool) "non-empty result" true (String.length m >= 0)
  done

let test_mutator_flip_changes_one_bit () =
  let rng = Support.Rng.create 5 in
  let s = String.make 16 'A' in
  let m = Fuzzer.Mutate.flip_bit rng s in
  let diff = ref 0 in
  String.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code m.[i] in
      let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
      diff := !diff + popcount x)
    s;
  Alcotest.(check int) "one bit flipped" 1 !diff

let test_corpus_pick_prefers_yield () =
  let c = Fuzzer.Corpus.create () in
  Fuzzer.Corpus.add c ~data:"good" ~exec_cycles:100 ~new_blocks:50 ();
  Fuzzer.Corpus.add c ~data:"bad" ~exec_cycles:100000 ~new_blocks:1 ();
  let rng = Support.Rng.create 3 in
  let good = ref 0 in
  for _ = 1 to 100 do
    match Fuzzer.Corpus.pick c rng with
    | Some s when s.Fuzzer.Corpus.data = "good" -> incr good
    | _ -> ()
  done;
  Alcotest.(check bool) "good seed favored" true (!good > 60)

(* ---------------- campaign ---------------- *)

let prep = lazy (Fuzzer.Campaign.prepare ~fuzz_execs:120 ~rounds:2 tiny)

let test_campaign_deterministic () =
  let p1 = Fuzzer.Campaign.prepare ~fuzz_execs:60 tiny in
  let p2 = Fuzzer.Campaign.prepare ~fuzz_execs:60 tiny in
  Alcotest.(check (list string)) "same corpus" p1.Fuzzer.Campaign.corpus
    p2.Fuzzer.Campaign.corpus

let test_campaign_corpus_grows () =
  let p = Lazy.force prep in
  Alcotest.(check bool) "corpus not empty" true (p.Fuzzer.Campaign.corpus <> [])

let test_replays_agree_on_results () =
  (* different tools, same inputs: all replay the same program *)
  let p = Lazy.force prep in
  let plain = Fuzzer.Campaign.replay_plain p in
  let sancov = Fuzzer.Campaign.replay_sancov p in
  Alcotest.(check int) "same input count"
    (List.length plain.Fuzzer.Campaign.r_per_input)
    (List.length sancov.Fuzzer.Campaign.r_per_input)

let test_overhead_ordering () =
  (* the qualitative result of Figure 9: baseline < OdinCov < SanCov,
     DrCov above SanCov, libInst far above everyone *)
  let p = Lazy.force prep in
  let total r = r.Fuzzer.Campaign.r_total_cycles in
  let base = total (Fuzzer.Campaign.replay_plain p) in
  let sancov = total (Fuzzer.Campaign.replay_sancov p) in
  let drcov = total (Fuzzer.Campaign.replay_dbi Baselines.Dbi.Drcov p) in
  let libinst = total (Fuzzer.Campaign.replay_dbi Baselines.Dbi.Libinst p) in
  let odin = total (Fuzzer.Campaign.replay_odincov ~prune:true p).Fuzzer.Campaign.o_replay in
  let noprune =
    total (Fuzzer.Campaign.replay_odincov ~prune:false p).Fuzzer.Campaign.o_replay
  in
  Alcotest.(check bool) "baseline cheapest" true (base < odin);
  Alcotest.(check bool) "OdinCov below SanCov" true (odin < sancov);
  Alcotest.(check bool) "OdinCov below NoPrune" true (odin < noprune);
  Alcotest.(check bool) "SanCov below DrCov" true (sancov < drcov);
  Alcotest.(check bool) "DrCov far below libInst" true (drcov * 3 < libinst)

let test_odincov_recompiles_during_replay () =
  let p = Lazy.force prep in
  let r = Fuzzer.Campaign.replay_odincov ~prune:true p in
  Alcotest.(check bool) "recompiled at least once" true
    (r.Fuzzer.Campaign.o_recompiles > 0);
  Alcotest.(check bool) "pruned probes" true (r.Fuzzer.Campaign.o_probes_pruned > 0)

let test_tools_see_same_coverage () =
  (* SanCov counters and DrCov's block map must agree on whether an input
     reaches new code (same program, same semantics) — compare covered
     *function* sets, which are representation-independent *)
  let p = Lazy.force prep in
  let input = List.hd p.Fuzzer.Campaign.corpus in
  (* SanCov *)
  let sc =
    Baselines.Sancov.build ~keep:[ "target_main" ]
      ~host:Workloads.Generate.host_functions p.Fuzzer.Campaign.modul
  in
  let vm = Fuzzer.Campaign.run_once sc.Baselines.Sancov.exe input in
  let sancov_funcs =
    Baselines.Sancov.covered_counters vm sc
    |> List.map (fun i ->
           let _, f, _ = sc.Baselines.Sancov.block_of_counter.(i) in
           f)
    |> List.sort_uniq String.compare
  in
  (* DrCov *)
  let exe =
    Baselines.Plain.build ~keep:[ "target_main" ]
      ~host:Workloads.Generate.host_functions p.Fuzzer.Campaign.modul
  in
  let dbi = Baselines.Dbi.create Baselines.Dbi.Drcov in
  ignore (Fuzzer.Campaign.run_once ~setup:(Baselines.Dbi.attach dbi) exe input);
  let drcov_funcs =
    Hashtbl.fold (fun (f, _) _ acc -> f :: acc) dbi.Baselines.Dbi.coverage []
    |> List.sort_uniq String.compare
  in
  (* the optimized binaries differ (inlining!), so compare only on the
     entry function, which both always observe *)
  Alcotest.(check bool) "sancov sees target_main" true
    (List.mem "target_main" sancov_funcs);
  Alcotest.(check bool) "drcov sees target_main" true
    (List.mem "target_main" drcov_funcs)

(* ---------------- partition variants on a workload ---------------- *)

let test_partition_variants_ordering () =
  (* Figure 10's shape: One <= Odin << Max on a coupled workload *)
  let p = Lazy.force prep in
  let run mode =
    let base = Ir.Clone.clone_module p.Fuzzer.Campaign.modul in
    let session =
      (* tier pinned off: the figure's cost ordering is a property of
         optimized fragment boundaries, not the tier-0 baseline *)
      Odin.Session.create ~mode ~keep:[ "target_main" ]
        ~host:Workloads.Generate.host_functions ~tiered:false base
    in
    ignore (Odin.Session.build session);
    let exe = Odin.Session.executable session in
    List.fold_left
      (fun acc input ->
        acc + (Fuzzer.Campaign.run_once exe input).Vm.cycles)
      0 p.Fuzzer.Campaign.corpus
  in
  let one = run Odin.Partition.One in
  let auto = run Odin.Partition.Auto in
  let max_ = run Odin.Partition.Max in
  Alcotest.(check bool) "Odin close to One (within 10%)" true
    (float_of_int auto <= 1.10 *. float_of_int one);
  Alcotest.(check bool) "Max pays for blind partitioning" true (max_ > auto)

(* ---------------- build-cost model ---------------- *)

let test_buildsim_matches_paper_libxml2 () =
  let rates = Buildsim.calibrate () in
  let p = Workloads.Profile.find_exn "libxml2" in
  let source = Workloads.Generate.source p in
  let m = Minic.Lower.compile source in
  let b = Buildsim.model rates (Buildsim.stats_of_module source m) in
  let feq = Alcotest.float 0.01 in
  Alcotest.(check feq) "autogen" 10.83 b.Buildsim.autogen;
  Alcotest.(check feq) "configure" 4.56 b.Buildsim.configure;
  Alcotest.(check feq) "frontend" 6.22 b.Buildsim.frontend;
  Alcotest.(check feq) "optimize" 15.28 b.Buildsim.optimize;
  Alcotest.(check feq) "codegen" 2.75 b.Buildsim.codegen

let test_buildsim_savings_claim () =
  (* the paper: caching bitcode saves "up to 45% of the total build time" *)
  let rates = Buildsim.calibrate () in
  let p = Workloads.Profile.find_exn "libxml2" in
  let source = Workloads.Generate.source p in
  let m = Minic.Lower.compile source in
  let b = Buildsim.model rates (Buildsim.stats_of_module source m) in
  let savings = Buildsim.savings_from_caching b in
  Alcotest.(check bool) "~45% savings" true (savings > 0.40 && savings < 0.65)

let test_buildsim_scales () =
  let rates = Buildsim.calibrate () in
  let small = Workloads.Profile.tiny in
  let large = Workloads.Profile.find_exn "sqlite" in
  let total p =
    let source = Workloads.Generate.source p in
    let m = Minic.Lower.compile source in
    Buildsim.total (Buildsim.model rates (Buildsim.stats_of_module source m))
  in
  Alcotest.(check bool) "bigger program, longer build" true (total large > total small)


(* ---------------- input-to-state solver ---------------- *)

let test_solver_patches_le32_magic () =
  let input = "xx\x2A\x00\x01\x00zz" in
  (* the program observed 0x00010000 + 42 = 65578 little-endian in the
     input and wanted 7777 *)
  let records =
    [ { Odin.Cmplog.rec_pid = 0; rec_lhs = 65578L; rec_rhs = 7777L } ]
  in
  let candidates = Fuzzer.Solver.solve ~records input in
  Alcotest.(check bool) "produced candidates" true (candidates <> []);
  let le32 v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 255)) in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "one candidate carries the wanted constant" true
    (List.exists (fun c -> contains c (le32 7777)) candidates)

let test_solver_end_to_end_roadblock () =
  (* a 4-byte big-endian magic only the solver can find *)
  let src =
    {|
int target_main(char *buf, int len) {
  if (len < 8) return 0;
  int magic = ((buf[0] & 255) << 24) | ((buf[1] & 255) << 16)
            | ((buf[2] & 255) << 8) | (buf[3] & 255);
  if (magic == 0x11223344) return 777;
  return 1;
}
|}
  in
  let m = Minic.Lower.compile src in
  let session = Odin.Session.create ~keep:[ "target_main" ] m in
  let cmplog = Odin.Cmplog.setup session in
  ignore (Odin.Session.build session);
  let run input =
    let vm = Vm.create (Odin.Session.executable session) in
    Vm.register_host vm Odin.Cmplog.runtime_fn (Odin.Cmplog.host_hook cmplog);
    let addr = Vm.write_buffer vm input in
    Vm.call vm "target_main" [ addr; Int64.of_int (String.length input) ]
  in
  let input = "AAAABBBB" in
  Alcotest.(check int64) "roadblock closed" 1L (run input);
  let records = Odin.Cmplog.drain cmplog in
  let candidates = Fuzzer.Solver.solve ~records input in
  Alcotest.(check bool) "solver passes the roadblock" true
    (List.exists (fun c -> run c = 777L) candidates)


(* ---------------- Figure 2 correctness experiment ---------------- *)

let test_fig2_instrument_first_solves_ranges () =
  let spec = Fuzzer.Fig2.make_spec 11 in
  let r = Fuzzer.Fig2.run_odin spec in
  Alcotest.(check int) "all range roadblocks solved" spec.Fuzzer.Fig2.n_range
    r.Fuzzer.Fig2.passed_range;
  Alcotest.(check int) "all equality roadblocks solved" spec.Fuzzer.Fig2.n_magic
    r.Fuzzer.Fig2.passed_magic

let test_fig2_instrument_last_breaks_ranges () =
  let spec = Fuzzer.Fig2.make_spec 11 in
  let r = Fuzzer.Fig2.run_static spec in
  (* the optimizer folded the range checks: the logged operands are no
     longer input copies, so the solver cannot patch them... *)
  Alcotest.(check int) "range roadblocks unsolvable after optimization" 0
    r.Fuzzer.Fig2.passed_range;
  (* ...while the undistorted equality checks still solve *)
  Alcotest.(check int) "equality roadblocks still solved" spec.Fuzzer.Fig2.n_magic
    r.Fuzzer.Fig2.passed_magic

let test_fig2_range_fold_actually_fired () =
  (* sanity for the experiment: the optimized program really contains the
     add/ult residue instead of the two comparisons *)
  let spec = Fuzzer.Fig2.make_spec 11 in
  let m = Minic.Lower.compile (Fuzzer.Fig2.source spec) in
  ignore (Opt.Pipeline.run ~keep:[ "target_main" ] m);
  let f = Option.get (Ir.Modul.find_func m "target_main") in
  let ult = ref 0 and sge = ref 0 in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with
      | Ir.Ins.Icmp (Ir.Ins.Ult, _, _) -> incr ult
      | Ir.Ins.Icmp (Ir.Ins.Sge, _, _) -> incr sge
      | _ -> ())
    f;
  Alcotest.(check int) "one ult per range check" spec.Fuzzer.Fig2.n_range !ult;
  Alcotest.(check int) "no sge left" 0 !sge

let () =
  Alcotest.run "eval"
    [
      ( "workloads",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "all 13 compile" `Slow test_workload_compiles;
          Alcotest.test_case "runs on VM" `Quick test_workload_runs_on_vm;
          Alcotest.test_case "VM matches interp" `Quick test_workload_vm_matches_interp;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "mutators total" `Quick test_mutators_total;
          Alcotest.test_case "flip_bit flips one bit" `Quick test_mutator_flip_changes_one_bit;
          Alcotest.test_case "corpus scheduling" `Quick test_corpus_pick_prefers_yield;
          Alcotest.test_case "campaign deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "corpus grows" `Quick test_campaign_corpus_grows;
        ] );
      ( "replay",
        [
          Alcotest.test_case "replays agree" `Quick test_replays_agree_on_results;
          Alcotest.test_case "overhead ordering (Fig. 9)" `Slow test_overhead_ordering;
          Alcotest.test_case "odincov recompiles" `Slow test_odincov_recompiles_during_replay;
          Alcotest.test_case "tools see same coverage" `Quick test_tools_see_same_coverage;
          Alcotest.test_case "partition variants (Fig. 10)" `Slow test_partition_variants_ordering;
        ] );
      ( "fig2-correctness",
        [
          Alcotest.test_case "instrument-first solves ranges" `Quick
            test_fig2_instrument_first_solves_ranges;
          Alcotest.test_case "instrument-last cannot" `Quick
            test_fig2_instrument_last_breaks_ranges;
          Alcotest.test_case "range fold fired" `Quick test_fig2_range_fold_actually_fired;
        ] );
      ( "solver",
        [
          Alcotest.test_case "patches encoded magic" `Quick test_solver_patches_le32_magic;
          Alcotest.test_case "end-to-end roadblock" `Quick test_solver_end_to_end_roadblock;
        ] );
      ( "buildsim",
        [
          Alcotest.test_case "libxml2 = paper Fig. 3" `Quick test_buildsim_matches_paper_libxml2;
          Alcotest.test_case "45% savings claim" `Quick test_buildsim_savings_claim;
          Alcotest.test_case "scales with size" `Quick test_buildsim_scales;
        ] );
    ]
