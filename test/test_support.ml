(* Tests for the support library: RNG determinism, union-find, statistics. *)

let test_rng_deterministic () =
  let a = Support.Rng.create 42 in
  let b = Support.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Support.Rng.next_int64 a) (Support.Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Support.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Support.Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_range () =
  let r = Support.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Support.Rng.range r (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independent () =
  let r = Support.Rng.create 1 in
  let s = Support.Rng.split r in
  let v1 = Support.Rng.next_int64 s in
  let v2 = Support.Rng.next_int64 r in
  Alcotest.(check bool) "streams differ" true (not (Int64.equal v1 v2))

let test_uf_basic () =
  let u = Support.Union_find.create () in
  Support.Union_find.union u "a" "b";
  Support.Union_find.union u "b" "c";
  Alcotest.(check bool) "a~c" true (Support.Union_find.same u "a" "c");
  Alcotest.(check bool) "a!~d" false (Support.Union_find.same u "a" "d")

let test_uf_clusters () =
  let u = Support.Union_find.create () in
  Support.Union_find.union u "a" "b";
  Support.Union_find.add u "z";
  let clusters = Support.Union_find.clusters u in
  Alcotest.(check int) "two clusters" 2 (List.length clusters);
  let sizes = List.map List.length clusters |> List.sort compare in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes

let test_uf_idempotent_union () =
  let u = Support.Union_find.create () in
  Support.Union_find.union u "a" "b";
  Support.Union_find.union u "a" "b";
  Support.Union_find.union u "b" "a";
  let clusters = Support.Union_find.clusters u in
  Alcotest.(check int) "one cluster" 1 (List.length clusters)

let feq = Alcotest.float 1e-9

let test_stats_median_odd () =
  Alcotest.(check feq) "median" 2. (Support.Stats.median [ 3.; 1.; 2. ])

let test_stats_median_even () =
  Alcotest.(check feq) "median" 1.5 (Support.Stats.median [ 1.; 2. ])

let test_stats_mean () =
  Alcotest.(check feq) "mean" 2. (Support.Stats.mean [ 1.; 2.; 3. ])

let test_stats_geomean () =
  Alcotest.(check feq) "geomean" 2. (Support.Stats.geomean [ 1.; 4. ])

let test_stats_percentile () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  Alcotest.(check feq) "p0" 10. (Support.Stats.percentile 0. xs);
  Alcotest.(check feq) "p100" 40. (Support.Stats.percentile 100. xs);
  Alcotest.(check feq) "p50" 25. (Support.Stats.percentile 50. xs)

let test_stats_p90_p99 () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  (* linear interpolation over 1..100: p90 = 90.1, p99 = 99.01 *)
  Alcotest.(check (Alcotest.float 1e-6)) "p90" 90.1 (Support.Stats.p90 xs);
  Alcotest.(check (Alcotest.float 1e-6)) "p99" 99.01 (Support.Stats.p99 xs);
  Alcotest.(check feq) "p90 singleton" 5. (Support.Stats.p90 [ 5. ]);
  Alcotest.(check feq) "p99 singleton" 5. (Support.Stats.p99 [ 5. ])

let test_stats_summary () =
  let s = Support.Stats.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "n" 4 s.Support.Stats.n;
  Alcotest.(check feq) "min" 1. s.Support.Stats.min;
  Alcotest.(check feq) "max" 4. s.Support.Stats.max

(* property: union-find clusters partition the member set *)
let prop_uf_partition =
  QCheck2.Test.make ~name:"union-find clusters partition members" ~count:100
    QCheck2.Gen.(list (pair (int_bound 20) (int_bound 20)))
    (fun pairs ->
      let u = Support.Union_find.create () in
      List.iter
        (fun (a, b) ->
          Support.Union_find.union u (string_of_int a) (string_of_int b))
        pairs;
      let clusters = Support.Union_find.clusters u in
      let all = List.concat clusters in
      let sorted = List.sort_uniq String.compare all in
      List.length all = List.length sorted
      && List.length all = List.length (Support.Union_find.members u))

let prop_median_between_min_max =
  QCheck2.Test.make ~name:"median lies within [min,max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let m = Support.Stats.median xs in
      m >= Support.Stats.min_l xs -. 1e-9 && m <= Support.Stats.max_l xs +. 1e-9)


let test_tab_render_alignment () =
  let out =
    Support.Tab.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "longer"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  (* all lines share a width (right-aligned numeric column) *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_tab_bar_chart_scales () =
  let chart = Support.Tab.bar_chart ~width:10 [ ("a", 1.0); ("b", 2.0) ] in
  let lines = String.split_on_char '\n' chart in
  let hashes s = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 s in
  match lines with
  | [ la; lb ] ->
    Alcotest.(check int) "max fills width" 10 (hashes lb);
    Alcotest.(check int) "half for half" 5 (hashes la)
  | _ -> Alcotest.fail "two lines expected"

let test_tab_pct_format () =
  Alcotest.(check string) "pct" "12.50%" (Support.Tab.pct 0.125)

(* ---------------- fault injection ---------------- *)

module Fault = Support.Fault

let test_fault_parse_round_trip () =
  match Fault.parse_plan "seed=42;opt.pipeline:transient:nth=1;link:raise:p=0.25" with
  | Error m -> Alcotest.fail m
  | Ok p ->
    Alcotest.(check int) "seed" 42 p.Fault.seed;
    Alcotest.(check int) "rules" 2 (List.length p.Fault.rules);
    Alcotest.(check string)
      "round trip" "seed=42;opt.pipeline:transient:nth=1;link:raise:p=0.25"
      (Fault.to_string p);
  (match Fault.parse_plan "link:delay=0.5" with
  | Ok { Fault.rules = [ { Fault.r_kind = Fault.Delay d; _ } ]; _ } ->
    Alcotest.(check (float 1e-9)) "delay" 0.5 d
  | _ -> Alcotest.fail "delay clause");
  List.iter
    (fun bad ->
      match Fault.parse_plan bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "link:explode"; "link:raise:p=2.0"; "link:raise:nth=0"; "seed=x;link:raise"; "justasite" ]

let test_fault_nth_trigger () =
  Fault.with_plan (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 2) "site.a" Fault.Raise ])
  @@ fun () ->
  Fault.hit "site.a";
  Fault.hit "site.b";
  (* unrelated site: own counter *)
  Alcotest.(check bool) "2nd hit fires" true
    (try
       Fault.hit "site.a";
       false
     with Fault.Injected "site.a" -> true);
  Fault.hit "site.a";
  (* 3rd hit silent again *)
  Alcotest.(check int) "fired once" 1 (Fault.total_fired ())

let fire_pattern seed n =
  Fault.with_plan
    (Fault.plan ~seed [ Fault.rule ~trigger:(Fault.Prob 0.4) "s" Fault.Transient ])
  @@ fun () ->
  List.init n (fun _ ->
      try
        Fault.hit "s";
        false
      with Fault.Transient_fault _ -> true)

let test_fault_seed_determinism () =
  let a = fire_pattern 7 64 and b = fire_pattern 7 64 in
  Alcotest.(check (list bool)) "same seed, same pattern" a b;
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "p=0.4 fires sometimes, not always" true
    (fired > 0 && fired < 64);
  (* a different seed gives a different pattern (overwhelmingly likely
     over 64 draws; deterministic given the fixed hash) *)
  Alcotest.(check bool) "seed changes pattern" true (fire_pattern 8 64 <> a)

let test_fault_suppression_and_torn () =
  Fault.with_plan
    (Fault.plan
       [ Fault.rule "s" Fault.Raise; Fault.rule "w" Fault.Torn ])
  @@ fun () ->
  Fault.with_suppressed (fun () ->
      Fault.hit "s";
      Alcotest.(check bool) "torn suppressed" false (Fault.torn "w"));
  (* torn rules are invisible to [hit] and vice versa *)
  Fault.hit "w";
  Alcotest.(check bool) "torn fires via torn" true (Fault.torn "w");
  Alcotest.(check bool) "raise site not torn" false (Fault.torn "s")

let test_fault_deadline_virtual () =
  (* virtual delay alone must trip the cooperative watchdog: no real
     sleeping in tests *)
  Fault.with_plan (Fault.plan [ Fault.rule "slow" (Fault.Delay 10.) ])
  @@ fun () ->
  Alcotest.(check bool) "timed out" true
    (try
       Fault.with_deadline (Some 1.0) (fun () ->
           Fault.hit "slow";
           false)
     with Fault.Timed_out "slow" -> true);
  (* without a deadline the delay is just virtual time *)
  Fault.hit "slow";
  Alcotest.(check bool) "no watchdog, no raise" true (Fault.backoff_total () >= 10.)

(* ---------------- persistent object store ---------------- *)

module Objstore = Support.Objstore

let store_seq = ref 0

let fresh_store_dir () =
  incr store_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "odin-objstore-test-%d-%d" (Hashtbl.hash Sys.executable_name) !store_seq)
  in
  Objstore.rm_rf dir;
  dir

let test_objstore_round_trip () =
  let dir = fresh_store_dir () in
  Fun.protect ~finally:(fun () -> Objstore.rm_rf dir) @@ fun () ->
  let st = Objstore.open_store dir in
  Alcotest.(check (option string)) "empty miss" None (Objstore.get st "k1");
  Objstore.put st "k1" "payload-one";
  Objstore.put st "k2" (String.make 4096 '\x00');
  Alcotest.(check (option string)) "hit" (Some "payload-one") (Objstore.get st "k1");
  Alcotest.(check (option string))
    "binary payload intact"
    (Some (String.make 4096 '\x00'))
    (Objstore.get st "k2");
  Alcotest.(check int) "two entries on disk" 2 (Objstore.length st);
  (* a fresh handle on the same directory is warm: the kill-and-restart
     round trip *)
  let st2 = Objstore.open_store dir in
  Alcotest.(check (option string))
    "survives reopen" (Some "payload-one") (Objstore.get st2 "k1");
  let s = Objstore.stats st2 in
  Alcotest.(check int) "reopen hits" 1 s.Objstore.st_hits;
  Alcotest.(check int) "no quarantine" 0 (Objstore.quarantine_length st2)

let test_objstore_corruption_quarantined () =
  let dir = fresh_store_dir () in
  Fun.protect ~finally:(fun () -> Objstore.rm_rf dir) @@ fun () ->
  let st = Objstore.open_store dir in
  Objstore.put st "key" "precious bytes";
  (* flip payload bytes in place: digest check must catch it *)
  let path = Objstore.entry_path st "key" in
  let raw = Objstore.read_file path in
  let mangled = Bytes.of_string raw in
  Bytes.set mangled (Bytes.length mangled - 1) '!';
  Objstore.write_file path (Bytes.to_string mangled);
  Alcotest.(check (option string)) "corrupt entry is a miss" None (Objstore.get st "key");
  Alcotest.(check int) "quarantined" 1 (Objstore.quarantine_length st);
  Alcotest.(check int) "not served again" 0 (Objstore.length st);
  Alcotest.(check int) "counted" 1 (Objstore.stats st).Objstore.st_quarantined;
  (* truncated (torn) entry likewise *)
  Objstore.put st "key" "precious bytes";
  let raw = Objstore.read_file path in
  Objstore.write_file path (String.sub raw 0 (String.length raw - 4));
  Alcotest.(check (option string)) "torn entry is a miss" None (Objstore.get st "key");
  Alcotest.(check int) "torn quarantined too" 2 (Objstore.quarantine_length st);
  (* the store heals: rewrite and read back *)
  Objstore.put st "key" "precious bytes";
  Alcotest.(check (option string))
    "healed" (Some "precious bytes") (Objstore.get st "key")

let test_objstore_version_invalidates () =
  let dir = fresh_store_dir () in
  Fun.protect ~finally:(fun () -> Objstore.rm_rf dir) @@ fun () ->
  let st = Objstore.open_store ~version:1 dir in
  Objstore.put st "k" "v1 payload";
  let st2 = Objstore.open_store ~version:2 dir in
  Alcotest.(check int) "format bump wipes objects" 0 (Objstore.length st2);
  Alcotest.(check (option string)) "old entry gone" None (Objstore.get st2 "k");
  Objstore.put st2 "k" "v2 payload";
  let st3 = Objstore.open_store ~version:2 dir in
  Alcotest.(check (option string))
    "same version preserved" (Some "v2 payload") (Objstore.get st3 "k")

let test_objstore_fault_sites () =
  let dir = fresh_store_dir () in
  Fun.protect ~finally:(fun () -> Objstore.rm_rf dir) @@ fun () ->
  let st = Objstore.open_store dir in
  Objstore.put st "k" "data";
  (* injected read fault degrades to a miss, never an exception *)
  Fault.with_plan (Fault.plan [ Fault.rule "store.read" Fault.Raise ]) (fun () ->
      Alcotest.(check (option string)) "read fault = miss" None (Objstore.get st "k"));
  Alcotest.(check (option string)) "entry intact" (Some "data") (Objstore.get st "k");
  (* injected write fault is swallowed and counted *)
  Fault.with_plan (Fault.plan [ Fault.rule "store.write" Fault.Raise ]) (fun () ->
      Objstore.put st "k2" "lost");
  Alcotest.(check (option string)) "write fault skipped persist" None (Objstore.get st "k2");
  Alcotest.(check int) "write error counted" 1 (Objstore.stats st).Objstore.st_write_errors;
  (* torn-write fault publishes a truncated entry; next get quarantines *)
  Fault.with_plan (Fault.plan [ Fault.rule "store.write" Fault.Torn ]) (fun () ->
      Objstore.put st "k3" "will be torn in half");
  Alcotest.(check (option string)) "torn write detected" None (Objstore.get st "k3");
  Alcotest.(check int) "torn write quarantined" 1 (Objstore.quarantine_length st)

let () =
  Alcotest.run "support"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "range bounds" `Quick test_rng_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        ] );
      ( "union-find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "clusters" `Quick test_uf_clusters;
          Alcotest.test_case "idempotent union" `Quick test_uf_idempotent_union;
          QCheck_alcotest.to_alcotest prop_uf_partition;
        ] );
      ( "tab",
        [
          Alcotest.test_case "render alignment" `Quick test_tab_render_alignment;
          Alcotest.test_case "bar chart scaling" `Quick test_tab_bar_chart_scales;
          Alcotest.test_case "pct format" `Quick test_tab_pct_format;
        ] );
      ( "stats",
        [
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "p90/p99" `Quick test_stats_p90_p99;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          QCheck_alcotest.to_alcotest prop_median_between_min_max;
        ] );
      ( "fault",
        [
          Alcotest.test_case "plan parse round trip" `Quick
            test_fault_parse_round_trip;
          Alcotest.test_case "nth trigger" `Quick test_fault_nth_trigger;
          Alcotest.test_case "seed determinism" `Quick
            test_fault_seed_determinism;
          Alcotest.test_case "suppression + torn isolation" `Quick
            test_fault_suppression_and_torn;
          Alcotest.test_case "virtual deadline" `Quick
            test_fault_deadline_virtual;
        ] );
      ( "objstore",
        [
          Alcotest.test_case "round trip + reopen" `Quick
            test_objstore_round_trip;
          Alcotest.test_case "corruption quarantined" `Quick
            test_objstore_corruption_quarantined;
          Alcotest.test_case "version bump invalidates" `Quick
            test_objstore_version_invalidates;
          Alcotest.test_case "fault sites" `Quick test_objstore_fault_sites;
        ] );
    ]
