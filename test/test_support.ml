(* Tests for the support library: RNG determinism, union-find, statistics. *)

let test_rng_deterministic () =
  let a = Support.Rng.create 42 in
  let b = Support.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Support.Rng.next_int64 a) (Support.Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Support.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Support.Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_range () =
  let r = Support.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Support.Rng.range r (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independent () =
  let r = Support.Rng.create 1 in
  let s = Support.Rng.split r in
  let v1 = Support.Rng.next_int64 s in
  let v2 = Support.Rng.next_int64 r in
  Alcotest.(check bool) "streams differ" true (not (Int64.equal v1 v2))

let test_uf_basic () =
  let u = Support.Union_find.create () in
  Support.Union_find.union u "a" "b";
  Support.Union_find.union u "b" "c";
  Alcotest.(check bool) "a~c" true (Support.Union_find.same u "a" "c");
  Alcotest.(check bool) "a!~d" false (Support.Union_find.same u "a" "d")

let test_uf_clusters () =
  let u = Support.Union_find.create () in
  Support.Union_find.union u "a" "b";
  Support.Union_find.add u "z";
  let clusters = Support.Union_find.clusters u in
  Alcotest.(check int) "two clusters" 2 (List.length clusters);
  let sizes = List.map List.length clusters |> List.sort compare in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes

let test_uf_idempotent_union () =
  let u = Support.Union_find.create () in
  Support.Union_find.union u "a" "b";
  Support.Union_find.union u "a" "b";
  Support.Union_find.union u "b" "a";
  let clusters = Support.Union_find.clusters u in
  Alcotest.(check int) "one cluster" 1 (List.length clusters)

let feq = Alcotest.float 1e-9

let test_stats_median_odd () =
  Alcotest.(check feq) "median" 2. (Support.Stats.median [ 3.; 1.; 2. ])

let test_stats_median_even () =
  Alcotest.(check feq) "median" 1.5 (Support.Stats.median [ 1.; 2. ])

let test_stats_mean () =
  Alcotest.(check feq) "mean" 2. (Support.Stats.mean [ 1.; 2.; 3. ])

let test_stats_geomean () =
  Alcotest.(check feq) "geomean" 2. (Support.Stats.geomean [ 1.; 4. ])

let test_stats_percentile () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  Alcotest.(check feq) "p0" 10. (Support.Stats.percentile 0. xs);
  Alcotest.(check feq) "p100" 40. (Support.Stats.percentile 100. xs);
  Alcotest.(check feq) "p50" 25. (Support.Stats.percentile 50. xs)

let test_stats_p90_p99 () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  (* linear interpolation over 1..100: p90 = 90.1, p99 = 99.01 *)
  Alcotest.(check (Alcotest.float 1e-6)) "p90" 90.1 (Support.Stats.p90 xs);
  Alcotest.(check (Alcotest.float 1e-6)) "p99" 99.01 (Support.Stats.p99 xs);
  Alcotest.(check feq) "p90 singleton" 5. (Support.Stats.p90 [ 5. ]);
  Alcotest.(check feq) "p99 singleton" 5. (Support.Stats.p99 [ 5. ])

let test_stats_summary () =
  let s = Support.Stats.summarize [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "n" 4 s.Support.Stats.n;
  Alcotest.(check feq) "min" 1. s.Support.Stats.min;
  Alcotest.(check feq) "max" 4. s.Support.Stats.max

(* property: union-find clusters partition the member set *)
let prop_uf_partition =
  QCheck2.Test.make ~name:"union-find clusters partition members" ~count:100
    QCheck2.Gen.(list (pair (int_bound 20) (int_bound 20)))
    (fun pairs ->
      let u = Support.Union_find.create () in
      List.iter
        (fun (a, b) ->
          Support.Union_find.union u (string_of_int a) (string_of_int b))
        pairs;
      let clusters = Support.Union_find.clusters u in
      let all = List.concat clusters in
      let sorted = List.sort_uniq String.compare all in
      List.length all = List.length sorted
      && List.length all = List.length (Support.Union_find.members u))

let prop_median_between_min_max =
  QCheck2.Test.make ~name:"median lies within [min,max]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let m = Support.Stats.median xs in
      m >= Support.Stats.min_l xs -. 1e-9 && m <= Support.Stats.max_l xs +. 1e-9)


let test_tab_render_alignment () =
  let out =
    Support.Tab.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "longer"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  (* all lines share a width (right-aligned numeric column) *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_tab_bar_chart_scales () =
  let chart = Support.Tab.bar_chart ~width:10 [ ("a", 1.0); ("b", 2.0) ] in
  let lines = String.split_on_char '\n' chart in
  let hashes s = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 s in
  match lines with
  | [ la; lb ] ->
    Alcotest.(check int) "max fills width" 10 (hashes lb);
    Alcotest.(check int) "half for half" 5 (hashes la)
  | _ -> Alcotest.fail "two lines expected"

let test_tab_pct_format () =
  Alcotest.(check string) "pct" "12.50%" (Support.Tab.pct 0.125)

let () =
  Alcotest.run "support"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "range bounds" `Quick test_rng_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        ] );
      ( "union-find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "clusters" `Quick test_uf_clusters;
          Alcotest.test_case "idempotent union" `Quick test_uf_idempotent_union;
          QCheck_alcotest.to_alcotest prop_uf_partition;
        ] );
      ( "tab",
        [
          Alcotest.test_case "render alignment" `Quick test_tab_render_alignment;
          Alcotest.test_case "bar chart scaling" `Quick test_tab_bar_chart_scales;
          Alcotest.test_case "pct format" `Quick test_tab_pct_format;
        ] );
      ( "stats",
        [
          Alcotest.test_case "median odd" `Quick test_stats_median_odd;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "p90/p99" `Quick test_stats_p90_p99;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          QCheck_alcotest.to_alcotest prop_median_between_min_max;
        ] );
    ]
