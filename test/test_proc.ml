(* The process-isolated farm: wire-protocol codec hardening, supervisor
   kill/restart determinism, and campaign checkpoint/resume.

   The headline contract extends the farm's determinism claim across
   substrates and crashes: the logical results (coverage, pruned set,
   corpus, execs, cycles) are bit-identical between --farm-mode
   domains and procs, across --workers 1/2/4, and across any
   kill/restart schedule — a worker SIGKILLed pre-barrier, mid-frame
   or mid-checkpoint is restarted, re-sent the same assignment, and
   reproduces the same items. Checkpoints published at barriers resume
   to the same final state as the uninterrupted run. *)

module Pool = Support.Pool
module Fault = Support.Fault
module Objstore = Support.Objstore
module Wire = Farm.Wire
module Orch = Farm.Orch
module Csync = Farm.Csync

(* The test binary doubles as the worker executable: the supervisor
   re-execs us with the hidden subcommand, exactly like odinc. Must run
   before Alcotest sees argv. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "fuzz-worker" then begin
    Farm.Proc.worker_main ();
    exit 0
  end

let worker_argv = [| Sys.executable_name; "fuzz-worker" |]
let tiny = Workloads.Profile.tiny
let entry = Fuzzer.Campaign.entry
let seeds = Workloads.Generate.seed_inputs ~count:2 tiny
let compile () = Workloads.Generate.compile tiny

(* workers' environment with the given fault plan installed (and any
   inherited plan scrubbed) *)
let env_with_plan plan =
  let keep s = not (String.length s >= 12 && String.sub s 0 12 = "ODIN_FAULTS=") in
  Array.of_list
    (List.filter keep (Array.to_list (Unix.environment ()))
    @ [ "ODIN_FAULTS=" ^ Fault.to_string plan ])

let mk_cfg ?(workers = 2) ?(execs = 60) ?(sync = 20) ?(quorum = 1)
    ?(decay = 1.0) () =
  {
    Farm.default_config with
    Farm.fc_workers = workers;
    fc_execs = execs;
    fc_sync_interval = sync;
    fc_prune_quorum = quorum;
    fc_vote_decay = decay;
  }

let run_proc ?telemetry ?journal_path ?checkpoint_path ?resume ?worker_env
    ?(max_restarts = 3) cfg =
  Farm.Proc.run ?telemetry ?journal_path ?checkpoint_path ?resume ?worker_env
    ~max_restarts ~worker_argv ~entry ~seeds cfg (compile ())

let check_logical msg a b =
  Alcotest.(check (list int)) (msg ^ ": coverage") a.Farm.fs_coverage b.Farm.fs_coverage;
  Alcotest.(check (list int)) (msg ^ ": pruned") a.Farm.fs_pruned b.Farm.fs_pruned;
  Alcotest.(check (list string)) (msg ^ ": corpus") a.Farm.fs_corpus b.Farm.fs_corpus;
  Alcotest.(check int) (msg ^ ": execs") a.Farm.fs_execs b.Farm.fs_execs;
  Alcotest.(check int) (msg ^ ": cycles") a.Farm.fs_total_cycles b.Farm.fs_total_cycles

let counter_total (r : Telemetry.Recorder.t) name =
  List.fold_left
    (fun acc c ->
      if Telemetry.Metrics.counter_name c = name then
        acc + Telemetry.Metrics.value c
      else acc)
    0
    (Telemetry.Metrics.counters r.Telemetry.Recorder.metrics)

let with_tmp_dir tag f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("odin-test-" ^ tag) in
  Objstore.rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> Objstore.rm_rf dir) @@ fun () -> f dir

(* ---------------- wire codec ------------------------------------------- *)

let sample_init =
  Wire.Init
    {
      Wire.in_id = 3;
      in_seed = 42;
      in_mode = Odin.Partition.Auto;
      in_entry = "main";
      in_host = [ "h0"; "h1" ];
      in_seeds = [ "s0"; "" ];
      in_mod_name = "m";
      in_mod_text = "module text\nwith newline \x00 and nul";
      in_cache_dir = Some "/tmp/x";
      in_incr_link = Some true;
      in_incr_sched = None;
      in_promote_share = 0.05;
    }

let sample_assign =
  Wire.Assign
    {
      Wire.as_round = 7;
      as_slots = [ 12; 13; 14 ];
      as_corpus =
        [ { Orch.ce_input = "in-0"; ce_energy = 3; ce_cycles = 77; ce_fresh = 2 } ];
      as_pruned = [ 1; 4 ];
      as_fn_cycles = [ ("hot", 900); ("cold", 1) ];
    }

let sample_items =
  Wire.Items
    {
      Wire.im_round = 7;
      im_items =
        [
          {
            Csync.it_index = 12;
            it_input = "abc";
            it_cycles = 101;
            it_fired = [ 0; 5 ];
            it_fns = [ ("f", 50); ("g", 51) ];
            it_probe_cost = [ (0, 1, 10); (5, 2, 20) ];
          };
        ];
      im_skipped = 1;
      im_crashes = 0;
      im_recompiles = 2;
    }

let sample_msgs =
  [
    sample_init;
    Wire.Ready { rd_id = 3; rd_n_probes = 17 };
    sample_assign;
    Wire.Heartbeat { hb_round = 7; hb_done = 2 };
    sample_items;
    Wire.Died "vm fault";
    Wire.Shutdown;
    Wire.Blob { bl_kind = "mutate.assign"; bl_data = "\x00\x01binary\xffpayload" };
  ]

let test_wire_roundtrip () =
  List.iter
    (fun msg ->
      let frame = Wire.encode_frame msg in
      Alcotest.(check bool) "decode_frame round-trips" true
        (Wire.decode_frame frame = msg);
      match Wire.decode_at frame 0 with
      | Some (msg', off) ->
        Alcotest.(check bool) "decode_at round-trips" true (msg' = msg);
        Alcotest.(check int) "consumed whole frame" (String.length frame) off
      | None -> Alcotest.fail "decode_at returned None on a complete frame")
    sample_msgs;
  (* back-to-back frames decode in sequence *)
  let stream = String.concat "" (List.map Wire.encode_frame sample_msgs) in
  let rec walk off acc =
    if off >= String.length stream then List.rev acc
    else
      match Wire.decode_at stream off with
      | Some (m, off') -> walk off' (m :: acc)
      | None -> Alcotest.fail "incomplete frame in stream"
  in
  Alcotest.(check bool) "stream decodes to the same msgs" true
    (walk 0 [] = sample_msgs)

let expect_wire_error what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected Wire_error")
  | exception Wire.Wire_error _ -> ()

let test_wire_torn_and_corrupt () =
  let frame = Wire.encode_frame sample_assign in
  (* every strict prefix is "incomplete", never a parse *)
  for cut = 0 to String.length frame - 1 do
    match Wire.decode_at (String.sub frame 0 cut) 0 with
    | None -> ()
    | Some _ -> Alcotest.fail "decoded a torn frame"
    | exception Wire.Wire_error _ ->
      Alcotest.fail "prefix should read as incomplete, not corrupt"
  done;
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  expect_wire_error "bad magic" (fun () -> Wire.decode_frame (flip frame 0));
  expect_wire_error "bad version" (fun () -> Wire.decode_frame (flip frame 4));
  expect_wire_error "bad tag" (fun () -> Wire.decode_frame (flip frame 5));
  (* payload corruption is caught by the checksum *)
  expect_wire_error "payload bit-flip" (fun () ->
      Wire.decode_frame (flip frame (String.length frame - 1)));
  expect_wire_error "checksum bit-flip" (fun () ->
      Wire.decode_frame (flip frame 10));
  expect_wire_error "trailing garbage" (fun () ->
      Wire.decode_frame (frame ^ "x"));
  (* v3: tiered compilation joined the protocol (Init threshold,
     Assign merged profile, ckpt v2) *)
  Alcotest.(check int) "protocol version pinned" 3 Wire.version;
  Alcotest.(check int) "header length pinned" 14 Wire.header_len

(* ---------------- checkpoint files ------------------------------------- *)

(* a real checkpoint, as the domains farm publishes it *)
let make_ckpt dir =
  let path = Filename.concat dir "ck" in
  let _ =
    Farm.run ~pool:Pool.serial ~checkpoint_path:path ~entry ~seeds
      (mk_cfg ~execs:40 ()) (compile ())
  in
  (path, Wire.read_checkpoint path)

let test_checkpoint_file () =
  with_tmp_dir "ckfile" @@ fun dir ->
  let path, ck = make_ckpt dir in
  Alcotest.(check int) "version stamped" Orch.ckpt_version ck.Orch.ck_version;
  Alcotest.(check int) "cursor at budget" 40 ck.Orch.ck_next;
  (* rotation: the previous publication survives as .prev *)
  Alcotest.(check bool) ".prev exists" true (Sys.file_exists (path ^ ".prev"));
  let prev = Wire.read_checkpoint (path ^ ".prev") in
  Alcotest.(check bool) ".prev is an earlier barrier" true
    (prev.Orch.ck_next < ck.Orch.ck_next);
  (match Wire.load_checkpoint path with
  | Ok (ck', fallback) ->
    Alcotest.(check bool) "load returns primary" true (ck' = ck);
    Alcotest.(check bool) "no fallback needed" false fallback
  | Error m -> Alcotest.fail m);
  (* tear the primary: load falls back to .prev *)
  let raw = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub raw 0 (String.length raw / 2)));
  (match Wire.load_checkpoint path with
  | Ok (ck', fallback) ->
    Alcotest.(check bool) "fallback content is .prev" true (ck' = prev);
    Alcotest.(check bool) "fallback flagged" true fallback
  | Error m -> Alcotest.fail m);
  (* both gone: a clean error, not an exception *)
  Sys.remove path;
  Sys.remove (path ^ ".prev");
  match Wire.load_checkpoint path with
  | Ok _ -> Alcotest.fail "loaded a missing checkpoint"
  | Error _ -> ()

(* ---------------- substrate invariance --------------------------------- *)

let test_procs_equals_domains () =
  let cfg = mk_cfg () in
  let dom = Farm.run ~pool:Pool.serial ~entry ~seeds cfg (compile ()) in
  let prc = run_proc cfg in
  check_logical "domains vs procs" dom prc;
  Alcotest.(check int) "probe universe identical" dom.Farm.fs_total_probes
    prc.Farm.fs_total_probes;
  Alcotest.(check int) "same barrier count" dom.Farm.fs_sync_rounds
    prc.Farm.fs_sync_rounds;
  Alcotest.(check bool) "found coverage" true (prc.Farm.fs_coverage <> [])

let test_procs_worker_invariance () =
  let sts = List.map (fun w -> run_proc (mk_cfg ~workers:w ())) [ 1; 2; 4 ] in
  let base = List.hd sts in
  List.iter2
    (fun w st -> check_logical (Printf.sprintf "procs w=%d" w) base st)
    [ 1; 2; 4 ] sts

(* ---------------- kill matrix ------------------------------------------ *)

(* SIGKILL mid-campaign, at three points in a worker's send sequence,
   for 2- and 4-process fleets: the supervisor restarts the worker,
   re-sends the outstanding assignment, and the campaign's logical
   results are bit-identical to the unkilled run. Nth 20 lands inside a
   mid-campaign round for both fleet sizes, and a restarted worker's
   shorter re-run never reaches 20 sends, so each incarnation dies at
   most once. *)

let kill_variant ~workers baseline variant plan =
  let r = Telemetry.Recorder.create () in
  let st = run_proc ~telemetry:r ~worker_env:(env_with_plan plan)
      (mk_cfg ~workers ())
  in
  let tag = Printf.sprintf "%s (w=%d)" variant workers in
  check_logical tag baseline st;
  Alcotest.(check bool) (tag ^ ": workers were killed") true
    (counter_total r "farm.worker_deaths" > 0);
  Alcotest.(check bool) (tag ^ ": workers were restarted") true
    (counter_total r "farm.worker_restarts" > 0);
  Alcotest.(check (list (pair int string))) (tag ^ ": none retired") []
    st.Farm.fs_dead

let test_kill_matrix () =
  List.iter
    (fun workers ->
      let baseline = run_proc (mk_cfg ~workers ()) in
      (* SIGKILL at a clean frame boundary: the worker dies just before
         writing a heartbeat; the supervisor sees EOF and restarts *)
      kill_variant ~workers baseline "kill mid-round"
        (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 20) "wire.send" Fault.Kill ]);
      (* death mid-frame: half a heartbeat lands in the pipe; the
         supervisor detects the torn frame and restarts *)
      kill_variant ~workers baseline "torn mid-frame"
        (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 20) "wire.send" Fault.Torn ]))
    [ 2; 4 ]

let test_preemptive_kill () =
  (* supervisor-side fault on the heartbeat site: the watchdog SIGKILLs
     one worker pre-barrier and restarts it; results are unchanged *)
  let baseline = run_proc (mk_cfg ()) in
  let r = Telemetry.Recorder.create () in
  let st =
    Fault.with_plan
      (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 2) "farm.heartbeat" Fault.Raise ])
      (fun () -> run_proc ~telemetry:r (mk_cfg ()))
  in
  check_logical "preemptive kill" baseline st;
  Alcotest.(check int) "exactly one restart" 1
    (counter_total r "farm.worker_restarts");
  Alcotest.(check (list (pair int string))) "none retired" [] st.Farm.fs_dead

let test_vote_decay_on_restart () =
  (* a restarted worker's prune-vote weight decays; the final
     checkpoint records the per-worker weights *)
  with_tmp_dir "decay" @@ fun dir ->
  let path = Filename.concat dir "ck" in
  let r = Telemetry.Recorder.create () in
  let _ =
    Fault.with_plan
      (Fault.plan [ Fault.rule ~trigger:(Fault.Nth 1) "farm.heartbeat" Fault.Raise ])
      (fun () ->
        run_proc ~telemetry:r ~checkpoint_path:path (mk_cfg ~decay:0.5 ()))
  in
  Alcotest.(check int) "one restart" 1 (counter_total r "farm.worker_restarts");
  let ck = Wire.read_checkpoint path in
  let weights = List.map snd ck.Orch.ck_weights |> List.sort compare in
  Alcotest.(check (list (float 1e-9)))
    "killed worker's weight halved, survivor's intact" [ 0.5; 1.0 ] weights;
  Alcotest.(check int) "restart count checkpointed" 1 ck.Orch.ck_restarts

let test_all_workers_retired () =
  (* a fault that kills every incarnation at its first send exhausts
     the restart budget during the handshake; the farm degrades to a
     clean empty result instead of hanging or crashing *)
  let plan =
    Fault.plan [ Fault.rule ~trigger:(Fault.Nth 1) "wire.send" Fault.Kill ]
  in
  let st =
    run_proc ~worker_env:(env_with_plan plan) ~max_restarts:1 (mk_cfg ())
  in
  Alcotest.(check int) "both workers retired" 2 (List.length st.Farm.fs_dead);
  Alcotest.(check int) "no executions merged" 0 st.Farm.fs_execs;
  Alcotest.(check (list int)) "no coverage" [] st.Farm.fs_coverage

(* ---------------- checkpoint / resume ---------------------------------- *)

let journal_tail path =
  let l = Telemetry.Journal.load path in
  let costs =
    List.filter_map
      (fun e ->
        if e.Telemetry.Journal.e_kind = "probe.cost" then
          Some e.Telemetry.Journal.e_fields
        else None)
      l.Telemetry.Journal.l_events
  in
  let done_fields =
    List.filter_map
      (fun e ->
        if e.Telemetry.Journal.e_kind = "farm.done" then
          Some
            (List.filter
               (fun (k, _) ->
                 List.mem k [ "execs"; "cycles"; "coverage"; "pruned"; "exchanged" ])
               e.Telemetry.Journal.e_fields)
        else None)
      l.Telemetry.Journal.l_events
  in
  (costs, done_fields)

let test_resume_from_middle () =
  with_tmp_dir "resume" @@ fun dir ->
  let ck_path = Filename.concat dir "ck" in
  let jf = Filename.concat dir "full.jsonl" in
  let jr = Filename.concat dir "resumed.jsonl" in
  let full = run_proc ~journal_path:jf (mk_cfg ~execs:60 ()) in
  (* interrupted campaign: stop at a third of the budget *)
  let _ = run_proc ~checkpoint_path:ck_path (mk_cfg ~execs:20 ()) in
  let ck =
    match Wire.load_checkpoint ck_path with
    | Ok (ck, false) -> ck
    | Ok (_, true) -> Alcotest.fail "unexpected fallback"
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "checkpoint mid-campaign" 20 ck.Orch.ck_next;
  let resumed =
    run_proc ~resume:ck ~journal_path:jr ~checkpoint_path:ck_path
      (mk_cfg ~execs:60 ())
  in
  check_logical "resume reaches the uninterrupted state" full resumed;
  let costs_f, done_f = journal_tail jf and costs_r, done_r = journal_tail jr in
  Alcotest.(check bool) "journal probe-cost tail identical" true
    (costs_f = costs_r && costs_f <> []);
  Alcotest.(check bool) "journal summary identical" true
    (done_f = done_r && done_f <> [])

let test_resume_from_final () =
  with_tmp_dir "resume-final" @@ fun dir ->
  let ck_path = Filename.concat dir "ck" in
  let full = run_proc ~checkpoint_path:ck_path (mk_cfg ~execs:60 ()) in
  let ck = Wire.read_checkpoint ck_path in
  Alcotest.(check int) "budget spent" 60 ck.Orch.ck_next;
  let resumed = run_proc ~resume:ck (mk_cfg ~execs:60 ()) in
  check_logical "resume from the final barrier is a no-op" full resumed

let test_resume_after_torn_checkpoint () =
  (* the supervisor crashes mid-publication at the final barrier: the
     primary file is torn, load falls back to the previous barrier's
     checkpoint, and resume still reaches the uninterrupted state *)
  with_tmp_dir "resume-torn" @@ fun dir ->
  let ck_path = Filename.concat dir "ck" in
  let full = run_proc (mk_cfg ~execs:60 ()) in
  let _ =
    Fault.with_plan
      (Fault.plan
         [ Fault.rule ~trigger:(Fault.Nth 4) "farm.checkpoint" Fault.Torn ])
      (fun () -> run_proc ~checkpoint_path:ck_path (mk_cfg ~execs:60 ()))
  in
  let ck =
    match Wire.load_checkpoint ck_path with
    | Ok (ck, fallback) ->
      Alcotest.(check bool) "primary torn: fell back to .prev" true fallback;
      ck
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "fallback is an earlier barrier" true
    (ck.Orch.ck_next < 60);
  let resumed = run_proc ~resume:ck (mk_cfg ~execs:60 ()) in
  check_logical "resume after torn checkpoint" full resumed

let test_resume_refuses_mismatch () =
  with_tmp_dir "resume-mismatch" @@ fun dir ->
  let _, ck = make_ckpt dir in
  (* wrong seed: same module, different campaign *)
  let cfg = { (mk_cfg ~execs:40 ()) with Farm.fc_seed = 1 } in
  (match run_proc ~resume:ck cfg with
  | _ -> Alcotest.fail "resume accepted a foreign seed"
  | exception Invalid_argument _ -> ());
  (* domains driver enforces the same pinning *)
  match Farm.run ~pool:Pool.serial ~resume:ck ~entry ~seeds cfg (compile ()) with
  | _ -> Alcotest.fail "domains resume accepted a foreign seed"
  | exception Invalid_argument _ -> ()

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "proc"
    [
      ( "wire",
        [
          Alcotest.test_case "frame round-trip, all tags" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "torn + corrupt frames rejected" `Quick
            test_wire_torn_and_corrupt;
        ] );
      ( "checkpoint file",
        [
          Alcotest.test_case "publish, rotate, torn fallback" `Quick
            test_checkpoint_file;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "procs == domains" `Slow test_procs_equals_domains;
          Alcotest.test_case "workers 1/2/4 identical" `Slow
            test_procs_worker_invariance;
        ] );
      ( "kill matrix",
        [
          Alcotest.test_case "SIGKILL + torn frame, w=2 and w=4" `Slow
            test_kill_matrix;
          Alcotest.test_case "preemptive watchdog kill" `Slow
            test_preemptive_kill;
          Alcotest.test_case "vote decay on restart" `Slow
            test_vote_decay_on_restart;
          Alcotest.test_case "all workers retired degrades cleanly" `Slow
            test_all_workers_retired;
        ] );
      ( "resume",
        [
          Alcotest.test_case "from mid-campaign checkpoint" `Slow
            test_resume_from_middle;
          Alcotest.test_case "from the final barrier" `Slow
            test_resume_from_final;
          Alcotest.test_case "after a torn checkpoint" `Slow
            test_resume_after_torn_checkpoint;
          Alcotest.test_case "refuses seed mismatch" `Quick
            test_resume_refuses_mismatch;
        ] );
    ]
