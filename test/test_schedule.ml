(* The O(changed) refresh path: incremental probe scheduler, Shash
   optimization memo, and host-symbol slabs.

   Units pin the mechanism down: the manager's dirty-set / by-target
   indexes, the index-driven schedule against the full propagate walk,
   re-heal feeding the same dirty-set, memo invalidation on
   [set_opt_rounds], host-slab patching and slab compaction.

   The equivalence suite is the tentpole invariant end to end: a
   200-toggle probe storm must produce bit-identical executable images,
   VM traces and outcomes whether the scheduler is incremental or the
   full walk, at every pool size. *)

module Incr = Link.Incremental
module L = Link.Linker
module Objfile = Link.Objfile
module Fault = Support.Fault
module Pool = Support.Pool

let counter_value session name =
  Telemetry.Metrics.value
    (Telemetry.Metrics.counter
       session.Odin.Session.telemetry.Telemetry.Recorder.metrics name)

(* ---------------- units: manager dirty-set + by-target index -------- *)

let cov_payload block =
  Instr.Probe.Cov { Instr.Probe.cov_block = block; cov_hits = 0 }

let pids ps = List.map (fun (p : Instr.Probe.t) -> p.Instr.Probe.pid) ps

let test_manager_indexes () =
  let mgr = Instr.Manager.create () in
  let p1 = Instr.Manager.add mgr ~target:"f" (cov_payload "b0") in
  let p2 = Instr.Manager.add mgr ~target:"g" (cov_payload "b1") in
  let p3 = Instr.Manager.add mgr ~target:"f" (cov_payload "b2") in
  (* by-target index serves pid-ascending, exactly to_list's order *)
  Alcotest.(check (list int)) "probes_on f"
    [ p1.Instr.Probe.pid; p3.Instr.Probe.pid ]
    (pids (Instr.Manager.probes_on mgr "f"));
  Alcotest.(check (list int)) "probes_on g" [ p2.Instr.Probe.pid ]
    (pids (Instr.Manager.probes_on mgr "g"));
  Alcotest.(check (list int)) "probes_on unknown" []
    (pids (Instr.Manager.probes_on mgr "nope"));
  (* fresh probes are dirty; clear_changes empties the dirty-set *)
  Alcotest.(check (list string)) "all targets dirty" [ "f"; "g" ]
    (Instr.Manager.changed_targets mgr);
  Instr.Manager.clear_changes mgr;
  Alcotest.(check (list string)) "clean" [] (Instr.Manager.changed_targets mgr);
  Alcotest.(check bool) "no changes" false (Instr.Manager.has_changes mgr);
  (* a toggle dirties exactly its probe and target *)
  Instr.Manager.set_enabled mgr p2 false;
  Alcotest.(check (list int)) "changed probe" [ p2.Instr.Probe.pid ]
    (pids (Instr.Manager.changed_probes mgr));
  Alcotest.(check (list string)) "changed target" [ "g" ]
    (Instr.Manager.changed_targets mgr);
  (* same-state toggle is not a change *)
  Instr.Manager.set_enabled mgr p2 false;
  Alcotest.(check (list int)) "idempotent toggle" [ p2.Instr.Probe.pid ]
    (pids (Instr.Manager.changed_probes mgr));
  (* removal drops the probe from the index but keeps the target dirty *)
  Instr.Manager.remove mgr p3;
  Alcotest.(check (list int)) "probes_on after remove" [ p1.Instr.Probe.pid ]
    (pids (Instr.Manager.probes_on mgr "f"));
  Alcotest.(check (list string)) "removed target dirty" [ "f"; "g" ]
    (Instr.Manager.changed_targets mgr);
  Instr.Manager.remove mgr p1;
  Alcotest.(check (list int)) "empty bucket" []
    (pids (Instr.Manager.probes_on mgr "f"));
  Instr.Manager.clear_changes mgr;
  Alcotest.(check bool) "clean again" false (Instr.Manager.has_changes mgr)

(* ---------------- units: index-driven schedule ---------------- *)

let sched_src =
  {|
static int f0(int x) { if (x > 3) return x * 2; return x + 1; }
static int f1(int x) { int a = 0; for (int i = 0; i < 3; i++) a = a + f0(x + i); return a; }
static int f2(int x) { if ((x & 1) == 0) return f1(x); return f1(x + 1); }
static int f3(int x) { return f2(x) + f0(x); }
static int f4(int x) { int a = 0; while (x > 0) { a = a + f3(x); x = x - 7; } return a; }
int main(int x) { return f4(x) + f2(x + 5); }
|}

let storm_inputs = [ 0L; 1L; 5L; 17L; 50L ]

let mk_session ?(src = sched_src) ~sched ~pool () =
  let m = Minic.Lower.compile src in
  let session =
    Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      ~pool ~incremental_sched:sched m
  in
  ignore (Odin.Cov.setup session);
  ignore (Odin.Session.build session);
  session

let first_probe session =
  let found = ref None in
  Instr.Manager.iter
    (fun pr -> if !found = None then found := Some pr)
    session.Odin.Session.manager;
  Option.get !found

(* Everything a schedule decides, as a comparable value. *)
let sched_view (s : Odin.Session.sched) =
  ( s.Odin.Session.changed_fragments,
    Odin.Session.SSet.elements s.Odin.Session.changed_symbols,
    pids s.Odin.Session.active )

let test_schedule_visits_only_dirty () =
  let session = mk_session ~sched:true ~pool:Pool.serial () in
  let n_frags =
    Array.length session.Odin.Session.plan.Odin.Partition.fragments
  in
  (* the initial build walks everything, once *)
  Alcotest.(check int) "initial visit is O(program)" n_frags
    (counter_value session "session.schedule_visited");
  let p = first_probe session in
  Instr.Manager.set_enabled session.Odin.Session.manager p false;
  let sched = Odin.Session.schedule session in
  (* one toggled probe -> exactly its fragment, found via the index *)
  (match sched.Odin.Session.changed_fragments with
  | [ fid ] ->
    let f = session.Odin.Session.plan.Odin.Partition.fragments.(fid) in
    Alcotest.(check bool) "the probe's own fragment" true
      (Odin.Partition.SSet.mem p.Instr.Probe.target f.Odin.Partition.members)
  | l -> Alcotest.failf "expected 1 fragment, got %d" (List.length l));
  Alcotest.(check int) "refresh visited only the dirty fragment"
    (n_frags + 1)
    (counter_value session "session.schedule_visited");
  ignore (Odin.Session.rebuild sched);
  (* the full walk agrees but pays O(program) *)
  Odin.Session.set_incremental_sched session false;
  Instr.Manager.set_enabled session.Odin.Session.manager p true;
  let sched = Odin.Session.schedule session in
  Alcotest.(check int) "full walk visits every fragment"
    (n_frags + 1 + n_frags)
    (counter_value session "session.schedule_visited");
  ignore (Odin.Session.rebuild sched)

let test_schedule_equivalence_direct () =
  (* the two schedulers must produce identical sched values for the
     same dirty state — fragments, symbols and back-propagated probes *)
  let inc = mk_session ~sched:true ~pool:Pool.serial () in
  let full = mk_session ~sched:false ~pool:Pool.serial () in
  let rand =
    let state = ref 20260809 in
    fun () ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state
  in
  for round = 1 to 25 do
    let choices = ref [] in
    Instr.Manager.iter
      (fun p -> choices := (p.Instr.Probe.pid, rand () mod 3 = 0) :: !choices)
      inc.Odin.Session.manager;
    let apply session =
      Instr.Manager.iter
        (fun p ->
          match List.assoc_opt p.Instr.Probe.pid !choices with
          | Some true ->
            Instr.Manager.set_enabled session.Odin.Session.manager p
              (not p.Instr.Probe.enabled)
          | _ -> ())
        session.Odin.Session.manager
    in
    apply inc;
    apply full;
    let si = Odin.Session.schedule inc in
    let sf = Odin.Session.schedule full in
    if sched_view si <> sched_view sf then
      Alcotest.failf "round %d: schedules diverged" round;
    ignore (Odin.Session.rebuild si);
    ignore (Odin.Session.rebuild sf)
  done

(* ---------------- units: re-heal feeds the dirty-set ---------------- *)

let test_reheal_via_dirty_set () =
  let session = mk_session ~sched:true ~pool:Pool.serial () in
  let p = first_probe session in
  Instr.Manager.set_enabled session.Odin.Session.manager p false;
  (* a persistent materialize fault degrades the probe's fragment *)
  (match
     Fault.with_plan
       (Fault.plan [ Fault.rule "session.materialize" Fault.Transient ])
       (fun () -> Option.get (Odin.Session.try_refresh session))
   with
  | Odin.Session.Degraded (_ :: _) -> ()
  | _ -> Alcotest.fail "expected a degraded fragment");
  let degraded = Odin.Session.degraded_fragments session in
  Alcotest.(check bool) "degraded set non-empty" true (degraded <> []);
  (* no probe changed, yet the incremental schedule carries exactly the
     degraded fragments: the re-heal path rides the same dirty-set *)
  let sched = Odin.Session.schedule session in
  Alcotest.(check (list int)) "re-heal schedules the degraded fragments"
    degraded sched.Odin.Session.changed_fragments;
  (match Odin.Session.rebuild sched with
  | Odin.Session.Ok -> ()
  | _ -> Alcotest.fail "re-heal rebuild failed");
  Alcotest.(check (list int)) "healed" []
    (Odin.Session.degraded_fragments session)

(* ---------------- units: memo ---------------- *)

let test_memo_hits_and_invalidation () =
  let session = mk_session ~sched:true ~pool:Pool.serial () in
  let p = first_probe session in
  (* warm both toggle states *)
  Instr.Manager.set_enabled session.Odin.Session.manager p false;
  ignore (Odin.Session.refresh session);
  Instr.Manager.set_enabled session.Odin.Session.manager p true;
  ignore (Odin.Session.refresh session);
  Alcotest.(check bool) "memo populated" true
    (Odin.Session.memo_size session > 0);
  let hits0 = counter_value session "session.opt_memo_hits" in
  Instr.Manager.set_enabled session.Odin.Session.manager p false;
  let ev = Option.get (Odin.Session.refresh session) in
  (* the warm toggle is served by the memo before Opt.Pipeline — and
     still counts as a cache hit for the recompile event *)
  Alcotest.(check bool) "memo hit counted" true
    (counter_value session "session.opt_memo_hits" > hits0);
  Alcotest.(check int) "served as cache hit"
    (List.length ev.Odin.Session.ev_fragments)
    ev.Odin.Session.ev_cache_hits;
  (* set_opt_rounds drops the memo outright *)
  Odin.Session.set_opt_rounds session 3;
  Alcotest.(check int) "memo reset on set_opt_rounds" 0
    (Odin.Session.memo_size session);
  let hits1 = counter_value session "session.opt_memo_hits" in
  Instr.Manager.set_enabled session.Odin.Session.manager p true;
  let ev = Option.get (Odin.Session.refresh session) in
  Alcotest.(check int) "no memo hit after invalidation" hits1
    (counter_value session "session.opt_memo_hits");
  Alcotest.(check int) "recompiled under the new bound" 0
    ev.Odin.Session.ev_cache_hits

(* ---------------- units: host-symbol slabs ---------------- *)

let an_mfunc =
  lazy
    (let m = Minic.Lower.compile "int one(int x) { return x; }" in
     let obj = Objfile.of_module m in
     match
       List.find_map
         (fun (s : Objfile.sym) ->
           match s.Objfile.s_def with
           | Objfile.Code mf -> Some mf
           | Objfile.Data _ -> None)
         obj.Objfile.o_syms
     with
     | Some mf -> mf
     | None -> Alcotest.fail "no code symbol in probe module")

let code ?(global = true) name =
  {
    Objfile.s_name = name;
    s_global = global;
    s_def = Objfile.Code (Lazy.force an_mfunc);
    s_comdat = None;
  }

let data ?(global = true) ?(relocs = []) ?(size = 8) name =
  {
    Objfile.s_name = name;
    s_global = global;
    s_def =
      Objfile.Data
        {
          Objfile.d_bytes = Bytes.make size '\x00';
          d_relocs = relocs;
          d_const = false;
        };
    s_comdat = None;
  }

let obj ?(aliases = []) ?(undef = []) name syms =
  { Objfile.o_name = name; o_syms = syms; o_aliases = aliases; o_undefined = undef }

let addr exe name = L.addr_of exe name

let test_host_slab_patching () =
  let t = Incr.create () in
  let objs1 = [ obj ~undef:[ "h1" ] "A" [ code "a1" ]; obj "B" [ code "b1" ] ] in
  let e1 = Incr.relink t ~host:[ "h1" ] ~changed:[] objs1 in
  let h1 = addr e1 "h1" in
  Alcotest.(check (option string)) "h1 thunk registered" (Some "h1")
    (Hashtbl.find_opt e1.L.host_at_addr h1);
  (* adding a host symbol + a changed object referencing it: patches *)
  let objs2 =
    [ obj ~undef:[ "h1"; "h2" ] "A" [ code "a1" ]; obj "B" [ code "b1" ] ]
  in
  let e2 = Incr.relink t ~host:[ "h1"; "h2" ] ~changed:[ "A" ] objs2 in
  Alcotest.(check bool) "host addition patches" true
    (Incr.last t).Incr.ls_incremental;
  Alcotest.(check int64) "h1 thunk stable" h1 (addr e2 "h1");
  Alcotest.(check (option string)) "h2 gets a fresh thunk" (Some "h2")
    (Hashtbl.find_opt e2.L.host_at_addr (addr e2 "h2"));
  Alcotest.(check bool) "h2 after h1 in the host slab" true
    (addr e2 "h2" > h1);
  (* the patched tables behave like a from-scratch link's *)
  let fresh = Incr.relink (Incr.create ()) ~host:[ "h1"; "h2" ] ~changed:[] objs2 in
  Alcotest.(check (option string)) "fresh link also resolves h2" (Some "h2")
    (Hashtbl.find_opt fresh.L.host_at_addr (addr fresh "h2"));
  (* removing a host symbol falls back to the full link *)
  let fb0 = (Incr.stats t).Incr.st_fallbacks in
  ignore (Incr.relink t ~host:[ "h1" ] ~changed:[ "A" ] objs1);
  Alcotest.(check bool) "host removal is a full link" false
    (Incr.last t).Incr.ls_incremental;
  Alcotest.(check int) "host removal counted as fallback" (fb0 + 1)
    (Incr.stats t).Incr.st_fallbacks

let test_host_new_reference_patches () =
  (* the host symbol was declared all along; a changed object merely
     references it for the first time — served off the cursor *)
  let t = Incr.create () in
  let objs1 = [ obj "A" [ code "a1" ]; obj "B" [ code "b1" ] ] in
  ignore (Incr.relink t ~host:[ "hx" ] ~changed:[] objs1);
  let objs2 = [ obj ~undef:[ "hx" ] "A" [ code "a1" ]; obj "B" [ code "b1" ] ] in
  let e = Incr.relink t ~host:[ "hx" ] ~changed:[ "A" ] objs2 in
  Alcotest.(check bool) "new host reference patches" true
    (Incr.last t).Incr.ls_incremental;
  Alcotest.(check (option string)) "hx resolved to a thunk" (Some "hx")
    (Hashtbl.find_opt e.L.host_at_addr (addr e "hx"));
  (* a genuinely undefined symbol still falls back *)
  let objs3 = [ obj ~undef:[ "nope" ] "A" [ code "a1" ]; obj "B" [ code "b1" ] ] in
  Alcotest.(check bool) "non-host undefined raises via full path" true
    (try
       ignore (Incr.relink t ~host:[ "hx" ] ~changed:[ "A" ] objs3);
       false
     with L.Undefined_symbol _ -> true)

(* ---------------- units: slab overflow + compaction ---------------- *)

let test_overflow_highwater_and_compaction () =
  let mk size =
    [ obj "A" [ code "a1"; data ~size "atab" ]; obj "B" [ code "b1" ] ]
  in
  let t = Incr.create () in
  ignore (Incr.relink t ~changed:[] (mk 8));
  (* 80 bytes burst the 64-byte slab: fallback, counted as overflow *)
  ignore (Incr.relink t ~changed:[ "A" ] (mk 80));
  Alcotest.(check int) "overflow counted" 1 (Incr.stats t).Incr.st_overflows;
  Alcotest.(check bool) "overflow served full" false
    (Incr.last t).Incr.ls_incremental;
  (* shrink back: still patches inside the re-laid slab *)
  ignore (Incr.relink t ~changed:[ "A" ] (mk 8));
  Alcotest.(check bool) "shrink patches" true (Incr.last t).Incr.ls_incremental;
  (* the high-water mark survives a state reset: the next full link
     still over-allocates A's slab so the growth pattern fits *)
  Incr.reset t;
  ignore (Incr.relink t ~changed:[] (mk 8));
  let sa = List.hd (Incr.slabs t) in
  Alcotest.(check int) "full link keeps high-water capacity" 128
    sa.Incr.si_data_cap;
  (* manual compaction drops the inflation: tight layout again *)
  Incr.compact t;
  ignore (Incr.relink t ~changed:[] (mk 8));
  let sa = List.hd (Incr.slabs t) in
  Alcotest.(check int) "compacted layout is tight" 64 sa.Incr.si_data_cap;
  Alcotest.(check int) "compaction counted" 1 (Incr.stats t).Incr.st_compactions;
  (* pathological growth: compact_threshold consecutive overflows
     trigger the automatic compaction *)
  let t = Incr.create () in
  ignore (Incr.relink t ~changed:[] (mk 8));
  let size = ref 65 in
  for _ = 1 to Incr.compact_threshold do
    ignore (Incr.relink t ~changed:[ "A" ] (mk !size));
    Alcotest.(check bool) "each growth step overflows" false
      (Incr.last t).Incr.ls_incremental;
    size := ((!size - 1) * 2) + 1
  done;
  Alcotest.(check int) "overflows counted" Incr.compact_threshold
    (Incr.stats t).Incr.st_overflows;
  Alcotest.(check int) "auto-compacted once" 1 (Incr.stats t).Incr.st_compactions

(* ---------------- equivalence: 200-toggle storm ---------------- *)

let exe_obs (exe : L.exe) =
  let img =
    List.sort compare
      (List.map (fun (b, by) -> (b, Bytes.to_string by)) exe.L.image)
  in
  let syms =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) exe.L.sym_addr []
    |> List.sort compare
  in
  (img, syms, exe.L.data_end)

let observe session =
  let exe = Odin.Session.executable session in
  let trace =
    List.map
      (fun x ->
        let vm = Vm.create exe in
        let ret = Vm.call vm "main" [ x ] in
        (ret, vm.Vm.cycles))
      storm_inputs
  in
  (exe_obs exe, trace)

let lcg seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

let run_storm ~rounds ~pool =
  let inc = mk_session ~sched:true ~pool () in
  let full = mk_session ~sched:false ~pool () in
  let rand = lcg 20240806 in
  let states = ref [ (observe inc, observe full) ] in
  for _ = 1 to rounds do
    let choices = ref [] in
    Instr.Manager.iter
      (fun p -> choices := (p.Instr.Probe.pid, rand () mod 3 = 0) :: !choices)
      inc.Odin.Session.manager;
    let apply session =
      Instr.Manager.iter
        (fun p ->
          match List.assoc_opt p.Instr.Probe.pid !choices with
          | Some true ->
            Instr.Manager.set_enabled session.Odin.Session.manager p
              (not p.Instr.Probe.enabled)
          | _ -> ())
        session.Odin.Session.manager
    in
    apply inc;
    apply full;
    (match (Odin.Session.try_refresh inc, Odin.Session.try_refresh full) with
    | Some Odin.Session.Ok, Some Odin.Session.Ok -> ()
    | None, None -> ()
    | a, b ->
      let s = function
        | None -> "None"
        | Some Odin.Session.Ok -> "Ok"
        | Some (Odin.Session.Degraded _) -> "Degraded"
        | Some (Odin.Session.Rolled_back _) -> "Rolled_back"
      in
      Alcotest.failf "outcomes diverged: incremental %s vs full %s" (s a) (s b));
    states := (observe inc, observe full) :: !states
  done;
  (* the storm must actually exercise the incremental machinery *)
  Alcotest.(check bool) "memo used" true
    (counter_value inc "session.opt_memo_hits" > 0);
  Alcotest.(check bool) "incremental walk visited less" true
    (counter_value inc "session.schedule_visited"
    < counter_value full "session.schedule_visited");
  Alcotest.(check int) "full session never memo-hits" 0
    (counter_value full "session.opt_memo_hits");
  List.rev !states

let test_storm_equivalence () =
  let per_size =
    List.map
      (fun size ->
        let pool = if size = 1 then Pool.serial else Pool.create ~size () in
        Fun.protect ~finally:(fun () -> if size > 1 then Pool.shutdown pool)
        @@ fun () ->
        let states = run_storm ~rounds:200 ~pool in
        List.iteri
          (fun i (inc_obs, full_obs) ->
            if inc_obs <> full_obs then
              Alcotest.failf "jobs %d, round %d: incremental != full" size i)
          states;
        states)
      [ 1; 2; 4 ]
  in
  match per_size with
  | s1 :: rest ->
    List.iteri
      (fun i s ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs 1 vs %d identical" (List.nth [ 2; 4 ] i))
          true (s = s1))
      rest
  | [] -> assert false

let () =
  Alcotest.run "schedule"
    [
      ( "dirty-set",
        [
          Alcotest.test_case "manager indexes" `Quick test_manager_indexes;
          Alcotest.test_case "visits only dirty fragments" `Quick
            test_schedule_visits_only_dirty;
          Alcotest.test_case "indexed = full walk (25 rounds)" `Quick
            test_schedule_equivalence_direct;
          Alcotest.test_case "re-heal via dirty-set" `Quick
            test_reheal_via_dirty_set;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hits + invalidation on set_opt_rounds" `Quick
            test_memo_hits_and_invalidation;
        ] );
      ( "host-slabs",
        [
          Alcotest.test_case "host addition patches" `Quick
            test_host_slab_patching;
          Alcotest.test_case "new host reference patches" `Quick
            test_host_new_reference_patches;
          Alcotest.test_case "overflow high-water + compaction" `Quick
            test_overflow_highwater_and_compaction;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "200-toggle storm, jobs 1/2/4" `Slow
            test_storm_equivalence;
        ] );
    ]
